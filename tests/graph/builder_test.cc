#include "graph/builder.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(BuilderTest, EmptyGraph) {
  UncertainGraphBuilder b(0);
  Result<UncertainGraph> g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(BuilderTest, SelfRiskDefaultsToZero) {
  UncertainGraphBuilder b(3);
  UncertainGraph g = b.Build().MoveValue();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(g.self_risk(v), 0.0);
  }
}

TEST(BuilderTest, SetSelfRiskValidation) {
  UncertainGraphBuilder b(2);
  EXPECT_TRUE(b.SetSelfRisk(0, 0.5).ok());
  EXPECT_TRUE(b.SetSelfRisk(1, 0.0).ok());
  EXPECT_TRUE(b.SetSelfRisk(1, 1.0).ok());
  EXPECT_EQ(b.SetSelfRisk(2, 0.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.SetSelfRisk(0, -0.1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.SetSelfRisk(0, 1.1).code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, SetAllSelfRisksSizeChecked) {
  UncertainGraphBuilder b(3);
  EXPECT_EQ(b.SetAllSelfRisks({0.1, 0.2}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(b.SetAllSelfRisks({0.1, 0.2, 0.3}).ok());
  UncertainGraph g = b.Build().MoveValue();
  EXPECT_DOUBLE_EQ(g.self_risk(1), 0.2);
}

TEST(BuilderTest, AddEdgeValidation) {
  UncertainGraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1, 0.5).ok());
  EXPECT_EQ(b.AddEdge(0, 0, 0.5).code(), StatusCode::kInvalidArgument);  // loop
  EXPECT_EQ(b.AddEdge(0, 3, 0.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddEdge(3, 0, 0.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddEdge(0, 1, 1.5).code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, ParallelEdgesAreKept) {
  UncertainGraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.2).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 0.7).ok());
  UncertainGraph g = b.Build().MoveValue();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

TEST(BuilderTest, CsrAdjacencyMatchesEdgeList) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  // A(0) has out-arcs to B(1) and C(2).
  auto out_a = g.OutArcs(0);
  ASSERT_EQ(out_a.size(), 2u);
  EXPECT_EQ(out_a[0].neighbor, 1u);
  EXPECT_EQ(out_a[1].neighbor, 2u);
  // E(4) has in-arcs from B(1), C(2), D(3).
  auto in_e = g.InArcs(4);
  ASSERT_EQ(in_e.size(), 3u);
  EXPECT_EQ(in_e[0].neighbor, 1u);
  EXPECT_EQ(in_e[1].neighbor, 2u);
  EXPECT_EQ(in_e[2].neighbor, 3u);
}

TEST(BuilderTest, EdgeIdsSharedBetweenDirections) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  // For every out-arc, find the matching in-arc and compare edge ids.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Arc& out : g.OutArcs(u)) {
      bool found = false;
      for (const Arc& in : g.InArcs(out.neighbor)) {
        if (in.edge == out.edge) {
          EXPECT_EQ(in.neighbor, u);
          EXPECT_DOUBLE_EQ(in.prob, out.prob);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(BuilderTest, DegreesConsistent) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  std::size_t total_out = 0;
  std::size_t total_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    total_out += g.OutDegree(v);
    total_in += g.InDegree(v);
  }
  EXPECT_EQ(total_out, g.num_edges());
  EXPECT_EQ(total_in, g.num_edges());
}

TEST(BuilderTest, BuildIsRepeatable) {
  UncertainGraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.3).ok());
  UncertainGraph g1 = b.Build().MoveValue();
  ASSERT_TRUE(b.AddEdge(1, 0, 0.4).ok());
  UncertainGraph g2 = b.Build().MoveValue();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(TransposeTest, ReversesEveryEdge) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  UncertainGraph t = g.Transposed();
  EXPECT_EQ(t.num_nodes(), g.num_nodes());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  for (const UncertainEdge& e : g.edges()) {
    bool found = false;
    for (const Arc& arc : t.OutArcs(e.dst)) {
      if (arc.neighbor == e.src && arc.prob == e.prob) found = true;
    }
    EXPECT_TRUE(found) << e.src << "->" << e.dst;
  }
  // Self-risks preserved.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(t.self_risk(v), g.self_risk(v));
  }
}

TEST(TransposeTest, DoubleTransposeIsIdentityOnDegrees) {
  UncertainGraph g = testing::RandomSmallGraph(6, 0.4, 123);
  UncertainGraph tt = g.Transposed().Transposed();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(tt.OutDegree(v), g.OutDegree(v));
    EXPECT_EQ(tt.InDegree(v), g.InDegree(v));
  }
}

}  // namespace
}  // namespace vulnds
