// DerivedCache semantics: lazy single build, Peek never builds, Put
// replaces, copies start cold, and moves transfer the slot (a commit
// snapshot's seeded columns must survive std::move into the catalog).

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "graph/derived_cache.h"
#include "graph/uncertain_graph.h"
#include "testing/test_graphs.h"

namespace vulnds {
namespace {

struct Payload {
  int value = 0;
};

TEST(DerivedCacheTest, GetOrBuildBuildsOnceAndPeekNeverBuilds) {
  DerivedCache cache;
  EXPECT_EQ(cache.Peek<Payload>(), nullptr);

  int builds = 0;
  const auto first = cache.GetOrBuild<Payload>([&] {
    ++builds;
    return Payload{41};
  });
  const auto second = cache.GetOrBuild<Payload>([&] {
    ++builds;
    return Payload{999};
  });
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(second->value, 41);
  EXPECT_EQ(cache.Peek<Payload>().get(), first.get());
}

TEST(DerivedCacheTest, PutReplacesTheOccupant) {
  DerivedCache cache;
  cache.GetOrBuild<Payload>([] { return Payload{1}; });
  cache.Put<Payload>(std::make_shared<const Payload>(Payload{2}));
  EXPECT_EQ(cache.Peek<Payload>()->value, 2);
}

TEST(DerivedCacheTest, CopiesStartColdMovesTransfer) {
  DerivedCache cache;
  cache.GetOrBuild<Payload>([] { return Payload{7}; });

  const DerivedCache copy(cache);
  EXPECT_EQ(copy.Peek<Payload>(), nullptr);
  EXPECT_NE(cache.Peek<Payload>(), nullptr);

  DerivedCache moved(std::move(cache));
  ASSERT_NE(moved.Peek<Payload>(), nullptr);
  EXPECT_EQ(moved.Peek<Payload>()->value, 7);

  DerivedCache assigned;
  assigned = std::move(moved);
  ASSERT_NE(assigned.Peek<Payload>(), nullptr);
  EXPECT_EQ(assigned.Peek<Payload>()->value, 7);
}

TEST(DerivedCacheTest, GraphMovesCarryTheCacheCopiesDoNot) {
  UncertainGraph g = testing::RandomSmallGraph(10, 0.3, 21);
  g.derived().Put<Payload>(std::make_shared<const Payload>(Payload{5}));

  const UncertainGraph copy(g);
  EXPECT_EQ(copy.derived().Peek<Payload>(), nullptr);

  const UncertainGraph moved(std::move(g));
  ASSERT_NE(moved.derived().Peek<Payload>(), nullptr);
  EXPECT_EQ(moved.derived().Peek<Payload>()->value, 5);
}

}  // namespace
}  // namespace vulnds
