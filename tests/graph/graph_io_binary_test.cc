#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

void ExpectGraphsEqual(const UncertainGraph& a, const UncertainGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.self_risk(v), b.self_risk(v));  // bit-exact
  }
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].src, b.edges()[e].src);
    EXPECT_EQ(a.edges()[e].dst, b.edges()[e].dst);
    EXPECT_EQ(a.edges()[e].prob, b.edges()[e].prob);
  }
}

TEST(GraphIoBinaryTest, RoundTripPreservesEverything) {
  const UncertainGraph g = testing::RandomSmallGraph(9, 0.4, 1234);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  Result<UncertainGraph> back = ReadGraphBinary(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectGraphsEqual(g, *back);
}

TEST(GraphIoBinaryTest, BinaryEqualsTextRoundTrip) {
  const UncertainGraph g = testing::PaperExampleGraph(0.2);
  std::stringstream text_buf;
  std::stringstream bin_buf;
  ASSERT_TRUE(WriteGraph(g, text_buf).ok());
  ASSERT_TRUE(WriteGraphBinary(g, bin_buf).ok());
  Result<UncertainGraph> from_text = ReadGraph(text_buf);
  Result<UncertainGraph> from_bin = ReadGraphBinary(bin_buf);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_bin.ok());
  ExpectGraphsEqual(*from_text, *from_bin);
}

TEST(GraphIoBinaryTest, EmptyGraphRoundTrip) {
  UncertainGraphBuilder b(0);
  const UncertainGraph g = b.Build().MoveValue();
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  Result<UncertainGraph> back = ReadGraphBinary(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), 0u);
  EXPECT_EQ(back->num_edges(), 0u);
}

TEST(GraphIoBinaryTest, BadMagicRejected) {
  std::stringstream buf("NOTMAGIC........................");
  EXPECT_EQ(ReadGraphBinary(buf).status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoBinaryTest, TruncatedHeaderRejected) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, 10));
  EXPECT_EQ(ReadGraphBinary(cut).status().code(), StatusCode::kIOError);
}

TEST(GraphIoBinaryTest, TruncatedPayloadRejected) {
  const UncertainGraph g = testing::RandomSmallGraph(6, 0.5, 7);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() - 3));
  EXPECT_EQ(ReadGraphBinary(cut).status().code(), StatusCode::kIOError);
}

TEST(GraphIoBinaryTest, FileRoundTripAndAutoDetect) {
  const UncertainGraph g = testing::PaperExampleGraph(0.25);
  const std::string bin_path = ::testing::TempDir() + "/vulnds_bin_test.snap";
  const std::string text_path = ::testing::TempDir() + "/vulnds_text_test.graph";
  ASSERT_TRUE(WriteGraphFile(g, bin_path, GraphFileFormat::kBinary).ok());
  ASSERT_TRUE(WriteGraphFile(g, text_path, GraphFileFormat::kText).ok());
  // ReadGraphFile detects the format from the magic in both cases.
  Result<UncertainGraph> from_bin = ReadGraphFile(bin_path);
  Result<UncertainGraph> from_text = ReadGraphFile(text_path);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ExpectGraphsEqual(*from_bin, *from_text);
}

TEST(GraphIoBinaryTest, HostileHeaderCountsRejectedWithoutAllocating) {
  // Magic + version, then node/edge counts claiming a multi-gigabyte
  // payload backed by nothing: must fail cleanly, not OOM.
  std::string bytes = "VULNDSG\n";
  const uint32_t version = 2;
  const uint64_t n = 4294967295ULL;  // max NodeId, passes the width check
  const uint64_t m = 4294967295ULL;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&n), sizeof(n));
  bytes.append(reinterpret_cast<const char*>(&m), sizeof(m));
  std::stringstream buf(bytes);
  EXPECT_EQ(ReadGraphBinary(buf).status().code(), StatusCode::kIOError);
}

// Byte layout of a v2 snapshot (graph_io.h): 8 magic + 4 version + 8 n +
// 8 m, then f64[n] risks, u64[n+1] offsets, u32[m] dsts, f64[m] probs,
// u32[m] edge ids. These helpers patch one element in place so each test
// can corrupt exactly one invariant of an otherwise valid dump.
struct SnapshotLayout {
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t risks = 28;
  std::size_t offsets = 0;
  std::size_t dsts = 0;
  std::size_t probs = 0;
  std::size_t edge_ids = 0;
};

SnapshotLayout LayoutOf(const UncertainGraph& g) {
  SnapshotLayout l;
  l.n = g.num_nodes();
  l.m = g.num_edges();
  l.offsets = l.risks + 8 * l.n;
  l.dsts = l.offsets + 8 * (l.n + 1);
  l.probs = l.dsts + 4 * l.m;
  l.edge_ids = l.probs + 8 * l.m;
  return l;
}

std::string SnapshotBytes(const UncertainGraph& g) {
  std::stringstream buf;
  const Status st = WriteGraphBinary(g, buf);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return buf.str();
}

template <typename T>
void Patch(std::string* bytes, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

Status LoadStatus(const std::string& bytes) {
  std::stringstream in(bytes);
  return ReadGraphBinary(in).status();
}

TEST(GraphIoBinaryTest, CorruptProbabilityRejectedWithIndex) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const SnapshotLayout l = LayoutOf(g);
  std::string bytes = SnapshotBytes(g);
  Patch(&bytes, l.probs + 8 * 1, 2.5);  // arc 1's diffusion probability
  const Status st = LoadStatus(bytes);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("arc 1"), std::string::npos) << st.ToString();
}

TEST(GraphIoBinaryTest, NaNProbabilityRejected) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const SnapshotLayout l = LayoutOf(g);
  std::string bytes = SnapshotBytes(g);
  Patch(&bytes, l.probs, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(LoadStatus(bytes).code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoBinaryTest, CorruptSelfRiskRejectedWithIndex) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const SnapshotLayout l = LayoutOf(g);
  std::string bytes = SnapshotBytes(g);
  Patch(&bytes, l.risks + 8 * 2, -0.25);  // node 2's self-risk
  const Status st = LoadStatus(bytes);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("node 2"), std::string::npos) << st.ToString();
  Patch(&bytes, l.risks + 8 * 2,
        std::numeric_limits<double>::infinity());
  EXPECT_EQ(LoadStatus(bytes).code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoBinaryTest, OutOfRangeDestinationRejected) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const SnapshotLayout l = LayoutOf(g);
  std::string bytes = SnapshotBytes(g);
  Patch(&bytes, l.dsts, static_cast<uint32_t>(999));
  const Status st = LoadStatus(bytes);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("999"), std::string::npos) << st.ToString();
}

TEST(GraphIoBinaryTest, SelfLoopArcRejected) {
  // Arc 0 belongs to node 0's group; pointing it back at node 0 forges a
  // self-loop the text loader could never produce.
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const SnapshotLayout l = LayoutOf(g);
  std::string bytes = SnapshotBytes(g);
  Patch(&bytes, l.dsts, static_cast<uint32_t>(0));
  const Status st = LoadStatus(bytes);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("self-loop"), std::string::npos) << st.ToString();
}

TEST(GraphIoBinaryTest, NonMonotonicOffsetsRejected) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const SnapshotLayout l = LayoutOf(g);
  std::string bytes = SnapshotBytes(g);
  Patch(&bytes, l.offsets + 8 * 1, static_cast<uint64_t>(5));
  const Status st = LoadStatus(bytes);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("node 1"), std::string::npos) << st.ToString();
}

TEST(GraphIoBinaryTest, OutOfOrderEdgeIdsRejected) {
  // Node A of the paper graph has arcs with edge ids 0 and 1; swapping them
  // breaks the builder's canonical ascending order, which samplers rely on
  // for reproducible coin-flip sequences.
  const UncertainGraph g = testing::PaperExampleGraph(0.2);
  const SnapshotLayout l = LayoutOf(g);
  std::string bytes = SnapshotBytes(g);
  Patch(&bytes, l.edge_ids, static_cast<uint32_t>(1));
  Patch(&bytes, l.edge_ids + 4, static_cast<uint32_t>(0));
  const Status st = LoadStatus(bytes);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("ascending"), std::string::npos) << st.ToString();
}

TEST(GraphIoBinaryTest, CorruptEdgeIdsRejected) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  std::string bytes = buf.str();
  // The edge-id column is the last 2 * sizeof(uint32_t) bytes; duplicate the
  // first id into the second so the permutation check must fire.
  ASSERT_GE(bytes.size(), 8u);
  bytes[bytes.size() - 4] = bytes[bytes.size() - 8];
  bytes[bytes.size() - 3] = bytes[bytes.size() - 7];
  bytes[bytes.size() - 2] = bytes[bytes.size() - 6];
  bytes[bytes.size() - 1] = bytes[bytes.size() - 5];
  std::stringstream corrupted(bytes);
  EXPECT_EQ(ReadGraphBinary(corrupted).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vulnds
