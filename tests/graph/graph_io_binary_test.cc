#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

void ExpectGraphsEqual(const UncertainGraph& a, const UncertainGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.self_risk(v), b.self_risk(v));  // bit-exact
  }
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].src, b.edges()[e].src);
    EXPECT_EQ(a.edges()[e].dst, b.edges()[e].dst);
    EXPECT_EQ(a.edges()[e].prob, b.edges()[e].prob);
  }
}

TEST(GraphIoBinaryTest, RoundTripPreservesEverything) {
  const UncertainGraph g = testing::RandomSmallGraph(9, 0.4, 1234);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  Result<UncertainGraph> back = ReadGraphBinary(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectGraphsEqual(g, *back);
}

TEST(GraphIoBinaryTest, BinaryEqualsTextRoundTrip) {
  const UncertainGraph g = testing::PaperExampleGraph(0.2);
  std::stringstream text_buf;
  std::stringstream bin_buf;
  ASSERT_TRUE(WriteGraph(g, text_buf).ok());
  ASSERT_TRUE(WriteGraphBinary(g, bin_buf).ok());
  Result<UncertainGraph> from_text = ReadGraph(text_buf);
  Result<UncertainGraph> from_bin = ReadGraphBinary(bin_buf);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_bin.ok());
  ExpectGraphsEqual(*from_text, *from_bin);
}

TEST(GraphIoBinaryTest, EmptyGraphRoundTrip) {
  UncertainGraphBuilder b(0);
  const UncertainGraph g = b.Build().MoveValue();
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  Result<UncertainGraph> back = ReadGraphBinary(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), 0u);
  EXPECT_EQ(back->num_edges(), 0u);
}

TEST(GraphIoBinaryTest, BadMagicRejected) {
  std::stringstream buf("NOTMAGIC........................");
  EXPECT_EQ(ReadGraphBinary(buf).status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoBinaryTest, TruncatedHeaderRejected) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, 10));
  EXPECT_EQ(ReadGraphBinary(cut).status().code(), StatusCode::kIOError);
}

TEST(GraphIoBinaryTest, TruncatedPayloadRejected) {
  const UncertainGraph g = testing::RandomSmallGraph(6, 0.5, 7);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() - 3));
  EXPECT_EQ(ReadGraphBinary(cut).status().code(), StatusCode::kIOError);
}

TEST(GraphIoBinaryTest, FileRoundTripAndAutoDetect) {
  const UncertainGraph g = testing::PaperExampleGraph(0.25);
  const std::string bin_path = ::testing::TempDir() + "/vulnds_bin_test.snap";
  const std::string text_path = ::testing::TempDir() + "/vulnds_text_test.graph";
  ASSERT_TRUE(WriteGraphFile(g, bin_path, GraphFileFormat::kBinary).ok());
  ASSERT_TRUE(WriteGraphFile(g, text_path, GraphFileFormat::kText).ok());
  // ReadGraphFile detects the format from the magic in both cases.
  Result<UncertainGraph> from_bin = ReadGraphFile(bin_path);
  Result<UncertainGraph> from_text = ReadGraphFile(text_path);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ExpectGraphsEqual(*from_bin, *from_text);
}

TEST(GraphIoBinaryTest, HostileHeaderCountsRejectedWithoutAllocating) {
  // Magic + version, then node/edge counts claiming a multi-gigabyte
  // payload backed by nothing: must fail cleanly, not OOM.
  std::string bytes = "VULNDSG\n";
  const uint32_t version = 2;
  const uint64_t n = 4294967295ULL;  // max NodeId, passes the width check
  const uint64_t m = 4294967295ULL;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&n), sizeof(n));
  bytes.append(reinterpret_cast<const char*>(&m), sizeof(m));
  std::stringstream buf(bytes);
  EXPECT_EQ(ReadGraphBinary(buf).status().code(), StatusCode::kIOError);
}

TEST(GraphIoBinaryTest, CorruptEdgeIdsRejected) {
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, buf).ok());
  std::string bytes = buf.str();
  // The edge-id column is the last 2 * sizeof(uint32_t) bytes; duplicate the
  // first id into the second so the permutation check must fire.
  ASSERT_GE(bytes.size(), 8u);
  bytes[bytes.size() - 4] = bytes[bytes.size() - 8];
  bytes[bytes.size() - 3] = bytes[bytes.size() - 7];
  bytes[bytes.size() - 2] = bytes[bytes.size() - 6];
  bytes[bytes.size() - 1] = bytes[bytes.size() - 5];
  std::stringstream corrupted(bytes);
  EXPECT_EQ(ReadGraphBinary(corrupted).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vulnds
