#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(GraphIoTest, RoundTripPreservesEverything) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraph(g, buf).ok());
  Result<UncertainGraph> back = ReadGraph(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), g.num_nodes());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(back->self_risk(v), g.self_risk(v));
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back->edges()[e].src, g.edges()[e].src);
    EXPECT_EQ(back->edges()[e].dst, g.edges()[e].dst);
    EXPECT_DOUBLE_EQ(back->edges()[e].prob, g.edges()[e].prob);
  }
}

TEST(GraphIoTest, RoundTripRandomGraphExactDoubles) {
  UncertainGraph g = testing::RandomSmallGraph(8, 0.3, 99);
  std::stringstream buf;
  ASSERT_TRUE(WriteGraph(g, buf).ok());
  Result<UncertainGraph> back = ReadGraph(buf);
  ASSERT_TRUE(back.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(back->self_risk(v), g.self_risk(v));  // bit-exact (17 digits)
  }
}

TEST(GraphIoTest, CommentsAndWhitespaceSkipped) {
  std::stringstream buf(
      "# a comment\n"
      "vulnds-graph 1\n"
      "  # another\n"
      "2 1\n"
      "0.5 0.25\n"
      "0 1 0.75\n");
  Result<UncertainGraph> g = ReadGraph(buf);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 2u);
  EXPECT_DOUBLE_EQ(g->self_risk(1), 0.25);
  EXPECT_DOUBLE_EQ(g->edges()[0].prob, 0.75);
}

TEST(GraphIoTest, BadMagicRejected) {
  std::stringstream buf("not-a-graph 1\n2 0\n0 0\n");
  EXPECT_EQ(ReadGraph(buf).status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, BadVersionRejected) {
  std::stringstream buf("vulnds-graph 9\n");
  EXPECT_EQ(ReadGraph(buf).status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, TruncatedFileRejected) {
  std::stringstream buf("vulnds-graph 1\n3 2\n0.1 0.2 0.3\n0 1 0.5\n");
  EXPECT_EQ(ReadGraph(buf).status().code(), StatusCode::kIOError);
}

TEST(GraphIoTest, InvalidProbabilityRejected) {
  std::stringstream buf("vulnds-graph 1\n2 1\n0.1 0.2\n0 1 1.5\n");
  EXPECT_EQ(ReadGraph(buf).status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, FileRoundTrip) {
  UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const std::string path = ::testing::TempDir() + "/vulnds_io_test.graph";
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  Result<UncertainGraph> back = ReadGraphFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 3u);
  EXPECT_EQ(back->num_edges(), 2u);
}

TEST(GraphIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadGraphFile("/nonexistent/path/g.graph").status().code(),
            StatusCode::kIOError);
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  UncertainGraphBuilder b(0);
  UncertainGraph g = b.Build().MoveValue();
  std::stringstream buf;
  ASSERT_TRUE(WriteGraph(g, buf).ok());
  Result<UncertainGraph> back = ReadGraph(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 0u);
}

}  // namespace
}  // namespace vulnds
