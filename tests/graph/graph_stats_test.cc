#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(GraphStatsTest, PaperExample) {
  const GraphStats s = ComputeStats(testing::PaperExampleGraph(0.2));
  EXPECT_EQ(s.num_nodes, 5u);
  EXPECT_EQ(s.num_edges, 6u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 6.0 / 5.0);
  // E has in-degree 3; A has out-degree 2; B has 1 in + 2 out = 3.
  EXPECT_EQ(s.max_in_degree, 3u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_degree, 3u);
}

TEST(GraphStatsTest, EmptyGraph) {
  UncertainGraphBuilder b(0);
  const GraphStats s = ComputeStats(b.Build().MoveValue());
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
  EXPECT_EQ(s.max_degree, 0u);
}

TEST(GraphStatsTest, StarGraphMaxDegree) {
  UncertainGraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) {
    ASSERT_TRUE(b.AddEdge(0, v, 0.5).ok());
  }
  const GraphStats s = ComputeStats(b.Build().MoveValue());
  EXPECT_EQ(s.max_out_degree, 4u);
  EXPECT_EQ(s.max_in_degree, 1u);
  EXPECT_EQ(s.max_degree, 4u);
}

TEST(GraphStatsTest, ParallelEdgesCount) {
  UncertainGraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.2).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 0.3).ok());
  const GraphStats s = ComputeStats(b.Build().MoveValue());
  EXPECT_EQ(s.num_edges, 2u);
  EXPECT_EQ(s.max_degree, 2u);
}

}  // namespace
}  // namespace vulnds
