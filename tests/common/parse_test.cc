#include "common/parse.h"

#include <gtest/gtest.h>

namespace vulnds {
namespace {

TEST(ParseTest, Uint64Valid) {
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("42"), 42u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseTest, Uint64RejectsGarbage) {
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("abc").ok());
  EXPECT_FALSE(ParseUint64("12abc").ok());  // trailing junk
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("1.5").ok());
  EXPECT_FALSE(ParseUint64(" 1").ok());
}

TEST(ParseTest, Uint64Overflow) {
  EXPECT_EQ(ParseUint64("18446744073709551616").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ParseTest, Int64Valid) {
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("7"), 7);
}

TEST(ParseTest, Int32RejectsOverflowInsteadOfTruncating) {
  EXPECT_EQ(*ParseInt32("2147483647"), 2147483647);
  EXPECT_EQ(*ParseInt32("-5"), -5);
  // 2^32 + 2 would truncate to 2 through a static_cast<int>.
  EXPECT_EQ(ParseInt32("4294967298").status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(ParseInt32("abc").ok());
}

TEST(ParseTest, DoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.3"), 0.3);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2.5"), -2.5);
}

TEST(ParseTest, DoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("0.3x").ok());
}

TEST(ParseTest, DoubleRejectsNonFinite) {
  // from_chars accepts these spellings; the helpers must not, because NaN
  // defeats every open-interval validation downstream (all comparisons with
  // NaN are false) and infinities are never valid options.
  EXPECT_EQ(ParseDouble("nan").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("NaN").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("inf").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("INF").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("-inf").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("infinity").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("nan(0x1)").status().code(),
            StatusCode::kInvalidArgument);
  // Finite overflow stays OutOfRange, not InvalidArgument.
  EXPECT_EQ(ParseDouble("1e99999").status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace vulnds
