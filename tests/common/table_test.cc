#include "common/table.h"

#include <gtest/gtest.h>

namespace vulnds {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  2"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(0.123456, 3), "0.123");
  EXPECT_EQ(TextTable::Num(2.0, 1), "2.0");
}

TEST(TextTableTest, CsvEscapesCommasAndQuotes) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, RowCountTracksAdds) {
  TextTable t;
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, RaggedRowsTolerated) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace vulnds
