#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace vulnds {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(1000, [&sum](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5L * (999L * 1000L / 2));
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadRequestFallsBackToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace vulnds
