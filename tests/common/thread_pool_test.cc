#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace vulnds {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForIndivisibleCoversEveryIndexOnce) {
  // n not divisible by num_threads: the last chunk is short, and with
  // ceil-sized chunks some workers may receive no chunk at all; every index
  // must still run exactly once.
  ThreadPool pool(8);
  for (const std::size_t n : {5u, 9u, 17u, 23u, 8u * 13u + 5u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
    }
  }
}

// The contract documented in thread_pool.h: [0, n) is split into static
// contiguous chunks of ceil(n / threads) indices, a pure function of
// (n, num_threads). Which worker runs a chunk is scheduling-dependent, but
// each chunk must execute on a single thread, in ascending index order.
TEST(ThreadPoolTest, ParallelForUsesTheDocumentedStaticPartition) {
  const std::size_t num_threads = 4;
  ThreadPool pool(num_threads);
  for (const std::size_t n : {1u, 3u, 4u, 10u, 1001u}) {
    struct Record {
      std::thread::id thread;
      std::size_t seq = 0;
    };
    std::vector<Record> records(n);
    std::atomic<std::size_t> clock{0};
    pool.ParallelFor(n, [&](std::size_t i) {
      records[i] = {std::this_thread::get_id(), clock.fetch_add(1)};
    });

    const std::size_t threads = std::min(num_threads, n);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin + 1; i < end; ++i) {
        EXPECT_EQ(records[i].thread, records[begin].thread)
            << "n=" << n << ": chunk [" << begin << ", " << end
            << ") split across threads";
        EXPECT_GT(records[i].seq, records[i - 1].seq)
            << "n=" << n << ": chunk [" << begin << ", " << end
            << ") executed out of order";
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForSingleWorkerRunsInline) {
  // threads <= 1 takes the serial path: everything runs on the caller.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(7);
  pool.ParallelFor(seen.size(),
                   [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(1000, [&sum](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5L * (999L * 1000L / 2));
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadRequestFallsBackToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace vulnds
