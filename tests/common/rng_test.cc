#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace vulnds {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, DoubleOpenNeverZero) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoubleOpen();
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliNaNIsDeterministicallyFalse) {
  const double nan = std::nan("");
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(nan));
  }
  // ...and the rejected coin consumes no draw: the stream continues exactly
  // where a fresh generator with the same seed starts.
  Rng fresh(21);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextU64(), fresh.NextU64());
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(23);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextInt(5, 5), 5);
  }
}

TEST(RngTest, GaussianMomentsSane) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ForkIsHistoryIndependent) {
  Rng a(77);
  Rng b(77);
  (void)b.NextU64();  // advance b's state
  (void)b.NextU64();
  Rng fa = a.Fork(5);
  Rng fb = b.Fork(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fa.NextU64(), fb.NextU64());
  }
}

TEST(RngTest, ForkIndicesAreIndependentStreams) {
  Rng base(99);
  Rng f0 = base.Fork(0);
  Rng f1 = base.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (f0.NextU64() == f1.NextU64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(SplitMixTest, KnownFixedPointFreeAndDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 42u);  // state advanced
}

TEST(SplitMixTest, Mix64IsStateless) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  EXPECT_NE(Mix64(123), Mix64(124));
}

}  // namespace
}  // namespace vulnds
