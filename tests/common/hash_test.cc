#include "common/hash.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace vulnds {
namespace {

TEST(UniformHashTest, DeterministicPerSeed) {
  UniformHash h(5);
  EXPECT_EQ(h.Hash64(100), UniformHash(5).Hash64(100));
  EXPECT_DOUBLE_EQ(h.HashUnit(100), UniformHash(5).HashUnit(100));
}

TEST(UniformHashTest, SeedsActAsIndependentFunctions) {
  UniformHash a(1);
  UniformHash b(2);
  int equal = 0;
  for (uint64_t i = 0; i < 256; ++i) {
    if (a.Hash64(i) == b.Hash64(i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(UniformHashTest, UnitRangeIsOpen) {
  UniformHash h(7);
  for (uint64_t i = 0; i < 100000; ++i) {
    const double x = h.HashUnit(i);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(UniformHashTest, UnitValuesLookUniform) {
  UniformHash h(11);
  const int n = 100000;
  const int buckets = 20;
  std::vector<int> hist(buckets, 0);
  for (int i = 0; i < n; ++i) {
    ++hist[static_cast<int>(h.HashUnit(i) * buckets)];
  }
  // Chi-square against uniform with generous slack.
  double chi = 0.0;
  const double expected = static_cast<double>(n) / buckets;
  for (int b = 0; b < buckets; ++b) {
    const double d = hist[b] - expected;
    chi += d * d / expected;
  }
  // 19 dof; > 60 would be wildly non-uniform.
  EXPECT_LT(chi, 60.0);
}

TEST(UniformHashTest, AvalancheOnAdjacentInputs) {
  UniformHash h(13);
  double total_flips = 0.0;
  const int n = 1000;
  for (uint64_t i = 0; i < n; ++i) {
    total_flips += std::popcount(h.Hash64(i) ^ h.Hash64(i + 1));
  }
  // Ideal avalanche flips 32 of 64 bits on average.
  EXPECT_NEAR(total_flips / n, 32.0, 2.0);
}

TEST(UniformHashTest, NoCollisionsOnSmallDomain) {
  UniformHash h(17);
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    seen.insert(h.Hash64(i));
  }
  EXPECT_EQ(seen.size(), 100000u);
}

}  // namespace
}  // namespace vulnds
