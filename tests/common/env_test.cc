#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace vulnds {
namespace {

TEST(EnvTest, StringDefaultWhenUnset) {
  ::unsetenv("VULNDS_TEST_VAR");
  EXPECT_EQ(GetEnvString("VULNDS_TEST_VAR", "fallback"), "fallback");
}

TEST(EnvTest, StringReadsValue) {
  ::setenv("VULNDS_TEST_VAR", "hello", 1);
  EXPECT_EQ(GetEnvString("VULNDS_TEST_VAR", "fallback"), "hello");
  ::unsetenv("VULNDS_TEST_VAR");
}

TEST(EnvTest, IntParsesAndDefaults) {
  ::setenv("VULNDS_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("VULNDS_TEST_INT", 7), 42);
  ::setenv("VULNDS_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("VULNDS_TEST_INT", 7), 7);
  ::unsetenv("VULNDS_TEST_INT");
  EXPECT_EQ(GetEnvInt("VULNDS_TEST_INT", 7), 7);
}

TEST(EnvTest, DoubleParsesAndDefaults) {
  ::setenv("VULNDS_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("VULNDS_TEST_DBL", 1.0), 0.25);
  ::unsetenv("VULNDS_TEST_DBL");
  EXPECT_DOUBLE_EQ(GetEnvDouble("VULNDS_TEST_DBL", 1.0), 1.0);
}

TEST(EnvTest, BenchFullScaleFollowsVariable) {
  ::unsetenv("VULNDS_BENCH_FULL");
  EXPECT_FALSE(BenchFullScale());
  ::setenv("VULNDS_BENCH_FULL", "1", 1);
  EXPECT_TRUE(BenchFullScale());
  ::setenv("VULNDS_BENCH_FULL", "0", 1);
  EXPECT_FALSE(BenchFullScale());
  ::unsetenv("VULNDS_BENCH_FULL");
}

}  // namespace
}  // namespace vulnds
