#include "common/status.h"

#include <gtest/gtest.h>

namespace vulnds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreHumanReadable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = r.MoveValue();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailingOperation() { return Status::IOError("disk on fire"); }

Status Propagates() {
  VULNDS_RETURN_NOT_OK(FailingOperation());
  return Status::Internal("unreached");
}

TEST(ResultTest, ReturnNotOkMacroPropagatesFirstError) {
  const Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
}

}  // namespace
}  // namespace vulnds
