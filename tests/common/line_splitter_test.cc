// LineSplitter: framing must be invariant to how the transport fragments
// the byte stream, the cap must bound memory with exactly one oversized
// event per hostile line, and CRLF terminators must behave like LF.

#include "common/line_splitter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vulnds {
namespace {

using Event = LineSplitter::Event;

// Feeds `input` in `chunk`-sized pieces and returns the event sequence
// ("L:<payload>" / "O"), Finish included.
std::vector<std::string> Drive(const std::string& input, std::size_t cap,
                               std::size_t chunk) {
  LineSplitter splitter(cap);
  std::vector<std::string> events;
  std::string line;
  for (std::size_t i = 0; i < input.size(); i += chunk) {
    splitter.Feed(input.data() + i, std::min(chunk, input.size() - i));
    for (;;) {
      const Event e = splitter.Next(&line);
      if (e == Event::kNone) break;
      events.push_back(e == Event::kLine ? "L:" + line : "O");
    }
  }
  switch (splitter.Finish(&line)) {
    case Event::kLine:
      events.push_back("F:" + line);
      break;
    case Event::kOversized:
      events.push_back("O");
      break;
    case Event::kNone:
      break;
  }
  return events;
}

TEST(LineSplitterTest, FramingIsChunkingInvariant) {
  const std::string input = "load g a.graph\ndetect g 3\n\nquit\n";
  const std::vector<std::string> expected = {"L:load g a.graph", "L:detect g 3",
                                             "L:", "L:quit"};
  for (const std::size_t chunk : {1u, 2u, 3u, 7u, 1000u}) {
    EXPECT_EQ(Drive(input, 64, chunk), expected) << "chunk=" << chunk;
  }
}

TEST(LineSplitterTest, FinalUnterminatedLineFlushesOnFinish) {
  EXPECT_EQ(Drive("a\nb", 64, 1), (std::vector<std::string>{"L:a", "F:b"}));
  EXPECT_EQ(Drive("", 64, 1), std::vector<std::string>{});
  EXPECT_EQ(Drive("a\n", 64, 2), std::vector<std::string>{"L:a"});
}

TEST(LineSplitterTest, CrLfTerminatorsStripOneCarriageReturn) {
  // "\r\n" frames like "\n"; interior CRs and a CR on the final unterminated
  // line are payload (getline parity for the flush).
  const std::vector<std::string> expected = {"L:stats", "L:a\rb", "F:tail\r"};
  for (const std::size_t chunk : {1u, 4u, 100u}) {
    EXPECT_EQ(Drive("stats\r\na\rb\r\ntail\r", 64, chunk), expected)
        << "chunk=" << chunk;
  }
  // A line of just "\r\n" is empty, not "\r".
  EXPECT_EQ(Drive("\r\n", 64, 1), std::vector<std::string>{"L:"});
}

TEST(LineSplitterTest, CapIsInclusiveAndResyncsAtNewline) {
  // Exactly cap bytes pass; cap + 1 is oversized, discarded through its
  // newline, and the next line frames cleanly.
  EXPECT_EQ(Drive(std::string(8, 'x') + "\nok\n", 8, 3),
            (std::vector<std::string>{"L:" + std::string(8, 'x'), "L:ok"}));
  for (const std::size_t chunk : {1u, 5u, 64u}) {
    EXPECT_EQ(Drive(std::string(9, 'x') + "\nok\n", 8, chunk),
              (std::vector<std::string>{"O", "L:ok"}))
        << "chunk=" << chunk;
  }
}

TEST(LineSplitterTest, OneOversizedEventPerHostileLine) {
  // A megabyte-long flood split across many feeds earns exactly one event,
  // and resident memory stays at the cap while it streams.
  LineSplitter splitter(16);
  const std::string flood(1 << 20, 'z');
  std::string line;
  for (std::size_t i = 0; i < flood.size(); i += 4096) {
    splitter.Feed(flood.data() + i, std::min<std::size_t>(4096, flood.size() - i));
    EXPECT_EQ(splitter.Next(&line), Event::kNone);
    EXPECT_LE(splitter.partial_bytes(), 16u);
    EXPECT_TRUE(splitter.mid_line());
  }
  splitter.Feed("\nnext\n", 6);
  EXPECT_EQ(splitter.Next(&line), Event::kOversized);
  EXPECT_EQ(splitter.Next(&line), Event::kLine);
  EXPECT_EQ(line, "next");
  EXPECT_EQ(splitter.Next(&line), Event::kNone);
  EXPECT_FALSE(splitter.mid_line());
}

TEST(LineSplitterTest, OversizedFinalLineWithoutNewlineReportsOnFinish) {
  EXPECT_EQ(Drive(std::string(64, 'y'), 8, 7), std::vector<std::string>{"O"});
}

TEST(LineSplitterTest, MidLineTracksPartialAndDiscardState) {
  LineSplitter splitter(4);
  std::string line;
  EXPECT_FALSE(splitter.mid_line());
  splitter.Feed("ab", 2);
  EXPECT_TRUE(splitter.mid_line());
  EXPECT_EQ(splitter.partial_bytes(), 2u);
  splitter.Feed("cdef", 4);  // over the cap: partial dropped, discarding
  EXPECT_TRUE(splitter.mid_line());
  EXPECT_EQ(splitter.partial_bytes(), 0u);
  splitter.Feed("\n", 1);
  EXPECT_EQ(splitter.Next(&line), Event::kOversized);
  EXPECT_FALSE(splitter.mid_line());
}

}  // namespace
}  // namespace vulnds
