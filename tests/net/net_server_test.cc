// NetServer lifecycle: socket sessions must speak byte-for-byte the same
// protocol as the stdin front (the time= token pinned by a zero clock, so
// transcripts compare with NO stripping), admission must reject over-cap
// clients with one "err busy" and a clean close, the idle/read deadlines
// must close stalled connections with a counted err, and drain — via
// BeginDrain, the `shutdown` verb, or a real SIGTERM — must finish
// in-flight work and leave no thread behind. Runs under the TSan CI job.

#include "net/net_server.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dyn/update_manager.h"
#include "graph/graph_io.h"
#include "net/socket.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "testing/test_graphs.h"

namespace vulnds::net {
namespace {

obs::ClockMicros ZeroClock() {
  return [] { return int64_t{0}; };
}

serve::QueryEngineOptions FixedClockOptions() {
  serve::QueryEngineOptions options;
  options.clock = ZeroClock();
  return options;
}

std::string WriteTempGraph(const UncertainGraph& g, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteGraphFile(g, path, GraphFileFormat::kBinary).ok());
  return path;
}

// Everything the server says until it closes the connection.
std::string ReadUntilEof(int fd, int timeout_ms = 30'000) {
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while (RecvSome(fd, buf, sizeof(buf), timeout_ms, &n) == IoStatus::kOk) {
    out.append(buf, n);
  }
  return out;
}

// One response line (through the first '\n'), or everything on EOF/timeout.
std::string ReadOneLine(int fd, int timeout_ms = 30'000) {
  std::string out;
  char c = 0;
  std::size_t n = 0;
  while (RecvSome(fd, &c, 1, timeout_ms, &n) == IoStatus::kOk) {
    out.push_back(c);
    if (c == '\n') break;
  }
  return out;
}

std::string DriveScript(int fd, const std::string& script) {
  EXPECT_EQ(SendAll(fd, script.data(), script.size(), 10'000), IoStatus::kOk);
  return ReadUntilEof(fd);
}

// The stdin front's answer to `script` on a fresh zero-clock engine: the
// byte-exact oracle for every socket transcript.
std::string StdinBaseline(const std::string& script) {
  serve::GraphCatalog catalog;
  serve::QueryEngine engine(&catalog, FixedClockOptions());
  dyn::UpdateManager updates(&catalog, ZeroClock());
  // Server-level counters, like the CLI's stdin front wires up — the
  // `stats` verb's "server ..." line must appear on both sides.
  serve::ServerStats server;
  std::istringstream in(script);
  std::ostringstream out;
  serve::RunServeLoop(in, out, engine, &updates, &server);
  return out.str();
}

// Load, cold detect, cached detect, stage + commit, detect the new version —
// the same per-graph script ServeServerTest uses, now over a socket.
std::string SessionScript(const std::string& name, const std::string& path) {
  return "load " + name + " " + path + "\n" +
         "detect " + name + " 3 BSRBK seed=7\n" +
         "detect " + name + " 3 BSRBK seed=7\n" +
         "addedge " + name + " 0 1 0.25\n" +
         "commit " + name + "\n" +
         "detect " + name + "@v1 3 BSRBK seed=7\n" +
         "quit\n";
}

// A served engine + updates + NetServer bundle with a zero clock.
struct TestServer {
  explicit TestServer(NetServerOptions options)
      : engine(&catalog, FixedClockOptions()),
        updates(&catalog, ZeroClock()),
        server(&engine, &updates, std::move(options)) {}

  serve::GraphCatalog catalog;
  serve::QueryEngine engine;
  dyn::UpdateManager updates;
  NetServer server;
};

NetServerOptions EphemeralTcp() {
  NetServerOptions options;
  options.tcp_port = 0;
  return options;
}

TEST(NetServerTest, ConcurrentTcpSessionsMatchStdinTranscriptsByteExact) {
  constexpr int kSessions = 8;
  std::vector<std::string> scripts, baselines;
  for (int i = 0; i < kSessions; ++i) {
    const std::string name = "g" + std::to_string(i);
    const std::string path = WriteTempGraph(
        testing::RandomSmallGraph(24, 0.2, 300 + i), "net_" + name + ".snap");
    scripts.push_back(SessionScript(name, path));
    baselines.push_back(StdinBaseline(scripts.back()));
  }

  TestServer ts(EphemeralTcp());
  ASSERT_TRUE(ts.server.Start().ok());
  const int port = ts.server.tcp_port();
  ASSERT_GT(port, 0);

  std::vector<std::string> transcripts(kSessions);
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&, i] {
      Result<Socket> sock = DialTcp("127.0.0.1", port);
      ASSERT_TRUE(sock.ok()) << sock.status().message();
      transcripts[i] = DriveScript(sock->fd(), scripts[i]);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(transcripts[i], baselines[i])
        << "socket session " << i << " diverged from the stdin front";
  }
  ts.server.BeginDrain();
  ts.server.Join();
  const NetStatsSnapshot stats = ts.server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::size_t>(kSessions));
  EXPECT_EQ(stats.rejected_busy, 0u);
  EXPECT_EQ(stats.active, 0u);
}

TEST(NetServerTest, HostileFramingMatchesStdinFrontByteExact) {
  // An oversized line (cap + change), CRLF terminators and a final
  // unterminated request all answer exactly what the stdin front answers.
  const std::string script = std::string(serve::kMaxRequestLineBytes + 17, 'x') +
                             "\nstats\r\nbogus";
  const std::string baseline = StdinBaseline(script);
  ASSERT_FALSE(baseline.empty());

  TestServer ts(EphemeralTcp());
  ASSERT_TRUE(ts.server.Start().ok());
  Result<Socket> sock = DialTcp("127.0.0.1", ts.server.tcp_port());
  ASSERT_TRUE(sock.ok()) << sock.status().message();
  EXPECT_EQ(SendAll(sock->fd(), script.data(), script.size(), 10'000),
            IoStatus::kOk);
  // EOF from our side ends the session exactly like stdin EOF.
  ::shutdown(sock->fd(), SHUT_WR);
  EXPECT_EQ(ReadUntilEof(sock->fd()), baseline);
  ts.server.BeginDrain();
  ts.server.Join();
}

TEST(NetServerTest, OverCapConnectionsGetOneBusyErrAndACleanClose) {
  NetServerOptions options = EphemeralTcp();
  options.max_connections = 2;
  TestServer ts(options);
  ASSERT_TRUE(ts.server.Start().ok());
  const int port = ts.server.tcp_port();

  // Occupy the cap and prove both holders were admitted (each answers a
  // request) before the third client knocks.
  Result<Socket> a = DialTcp("127.0.0.1", port);
  Result<Socket> b = DialTcp("127.0.0.1", port);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string ping = "versions nothing\n";
  for (int fd : {a->fd(), b->fd()}) {
    ASSERT_EQ(SendAll(fd, ping.data(), ping.size(), 10'000), IoStatus::kOk);
    EXPECT_NE(ReadOneLine(fd).find("err"), std::string::npos);
  }

  Result<Socket> c = DialTcp("127.0.0.1", port);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(ReadOneLine(c->fd()), "err busy\n");
  EXPECT_EQ(ReadUntilEof(c->fd()), "");  // clean close, no hang
  EXPECT_EQ(ts.server.stats().rejected_busy, 1u);

  // Freeing a slot re-admits: close one holder, the next client gets in.
  a->Close();
  bool readmitted = false;
  for (int attempt = 0; attempt < 200 && !readmitted; ++attempt) {
    Result<Socket> d = DialTcp("127.0.0.1", port);
    ASSERT_TRUE(d.ok());
    // Admitted connections answer the ping; rejected ones volunteer
    // "err busy" (the send may land on an already-closed socket — fine).
    (void)SendAll(d->fd(), ping.data(), ping.size(), 10'000);
    const std::string first = ReadOneLine(d->fd());
    if (first.rfind("err Not found", 0) == 0) {
      readmitted = true;
    } else {
      // Slot not reaped yet ("err busy" or a reset): try again.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(readmitted) << "freed slot was never re-admitted";
  ts.server.BeginDrain();
  ts.server.Join();
}

TEST(NetServerTest, IdleTimeoutClosesQuietConnectionWithCountedErr) {
  NetServerOptions options = EphemeralTcp();
  options.idle_timeout_ms = 100;
  TestServer ts(options);
  ASSERT_TRUE(ts.server.Start().ok());
  Result<Socket> sock = DialTcp("127.0.0.1", ts.server.tcp_port());
  ASSERT_TRUE(sock.ok());
  // One served request proves the session was live, then go quiet.
  const std::string ping = "versions nothing\n";
  ASSERT_EQ(SendAll(sock->fd(), ping.data(), ping.size(), 10'000),
            IoStatus::kOk);
  EXPECT_NE(ReadOneLine(sock->fd()).find("err"), std::string::npos);
  EXPECT_EQ(ReadUntilEof(sock->fd()), "err idle timeout, closing\n");
  EXPECT_EQ(ts.server.stats().idle_timeouts, 1u);
  ts.server.BeginDrain();
  ts.server.Join();
}

TEST(NetServerTest, ReadTimeoutClosesMidLineStall) {
  NetServerOptions options = EphemeralTcp();
  options.read_timeout_ms = 100;
  options.idle_timeout_ms = 60'000;  // only the mid-line deadline may fire
  TestServer ts(options);
  ASSERT_TRUE(ts.server.Start().ok());
  Result<Socket> sock = DialTcp("127.0.0.1", ts.server.tcp_port());
  ASSERT_TRUE(sock.ok());
  // A started-but-never-finished request line: the slow-loris shape.
  ASSERT_EQ(SendAll(sock->fd(), "dete", 4, 10'000), IoStatus::kOk);
  EXPECT_EQ(ReadUntilEof(sock->fd()), "err read timeout, closing\n");
  EXPECT_EQ(ts.server.stats().read_timeouts, 1u);
  EXPECT_EQ(ts.server.stats().idle_timeouts, 0u);
  ts.server.BeginDrain();
  ts.server.Join();
}

TEST(NetServerTest, ShutdownVerbDrainsServerAndWakesIdlePeers) {
  TestServer ts(EphemeralTcp());
  ASSERT_TRUE(ts.server.Start().ok());
  const int port = ts.server.tcp_port();

  Result<Socket> idle = DialTcp("127.0.0.1", port);
  Result<Socket> admin = DialTcp("127.0.0.1", port);
  ASSERT_TRUE(idle.ok() && admin.ok());
  const std::string ping = "versions nothing\n";
  ASSERT_EQ(SendAll(idle->fd(), ping.data(), ping.size(), 10'000),
            IoStatus::kOk);
  EXPECT_NE(ReadOneLine(idle->fd()).find("err"), std::string::npos);

  const std::string cmd = "shutdown\n";
  ASSERT_EQ(SendAll(admin->fd(), cmd.data(), cmd.size(), 10'000),
            IoStatus::kOk);
  EXPECT_EQ(ReadUntilEof(admin->fd()), "ok draining\n");
  // The idle peer is woken by the drain pipe and closed, not left hanging.
  EXPECT_EQ(ReadUntilEof(idle->fd()), "");
  ts.server.Join();
  EXPECT_TRUE(ts.server.draining());
  const NetStatsSnapshot stats = ts.server.stats();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.draining, 0u);
}

TEST(NetServerTest, SigtermDrainFinishesInFlightColdDetect) {
  const std::string path = WriteTempGraph(
      testing::RandomSmallGraph(24, 0.2, 900), "net_sigterm.snap");
  const std::string script = "load g " + path +
                             "\n"
                             "detect g 3 BSRBK seed=11\n";
  const std::string baseline = StdinBaseline(script);

  TestServer ts(EphemeralTcp());
  ASSERT_TRUE(ts.server.Start().ok());
  ASSERT_TRUE(InstallDrainOnSignal(&ts.server, SIGTERM).ok());
  Result<Socket> sock = DialTcp("127.0.0.1", ts.server.tcp_port());
  ASSERT_TRUE(sock.ok());
  ASSERT_EQ(SendAll(sock->fd(), script.data(), script.size(), 10'000),
            IoStatus::kOk);
  // Let the request reach the server, then deliver a real SIGTERM. The
  // in-flight cold detect must still answer completely before the close.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_EQ(ReadUntilEof(sock->fd()), baseline);
  ts.server.Join();  // the signal alone must be a complete drain trigger
  ResetDrainSignal(SIGTERM);
  EXPECT_TRUE(ts.server.draining());
}

TEST(NetServerTest, UnixSocketServesSameProtocolAndUnlinksOnDrain) {
  const std::string graph_path = WriteTempGraph(
      testing::RandomSmallGraph(24, 0.2, 77), "net_unix.snap");
  const std::string script = SessionScript("u", graph_path);
  const std::string baseline = StdinBaseline(script);

  NetServerOptions options;
  options.unix_path = ::testing::TempDir() + "/vulnds_net_test.sock";
  TestServer ts(options);
  ASSERT_TRUE(ts.server.Start().ok());
  EXPECT_EQ(ts.server.tcp_port(), -1);

  Result<Socket> sock = DialUnix(options.unix_path);
  ASSERT_TRUE(sock.ok()) << sock.status().message();
  EXPECT_EQ(DriveScript(sock->fd(), script), baseline);

  ts.server.BeginDrain();
  ts.server.Join();
  // The socket file is gone: a drained server leaves nothing bound.
  EXPECT_NE(::access(options.unix_path.c_str(), F_OK), 0);
  EXPECT_FALSE(DialUnix(options.unix_path).ok());
}

TEST(NetServerTest, StartRequiresATransport) {
  TestServer ts(NetServerOptions{});
  EXPECT_FALSE(ts.server.Start().ok());
}

}  // namespace
}  // namespace vulnds::net
