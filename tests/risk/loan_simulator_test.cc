#include "risk/loan_simulator.h"

#include <gtest/gtest.h>

#include <numeric>

namespace vulnds {
namespace {

LoanSimOptions SmallSim() {
  LoanSimOptions o;
  o.num_firms = 500;
  o.seed = 99;
  return o;
}

TEST(LoanSimTest, ValidatesOptions) {
  LoanSimOptions o = SmallSim();
  o.num_firms = 3;
  EXPECT_FALSE(SimulateLoanNetwork(o).ok());
  o = SmallSim();
  o.num_years = 0;
  EXPECT_FALSE(SimulateLoanNetwork(o).ok());
}

TEST(LoanSimTest, ShapesConsistent) {
  const auto data = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.num_nodes(), 500u);
  EXPECT_EQ(data->years, (std::vector<int>{2012, 2013, 2014, 2015, 2016}));
  EXPECT_EQ(data->behavior.size(), 5u);
  EXPECT_EQ(data->labels.size(), 5u);
  EXPECT_EQ(data->true_self_risk.size(), 5u);
  EXPECT_EQ(data->static_features.rows(), 500u);
  EXPECT_EQ(data->behavior[0].rows(), 500u);
  EXPECT_EQ(data->behavior[0].cols(), 4u * 12u);
  EXPECT_EQ(data->true_diffusion.size(), data->graph.num_edges());
}

TEST(LoanSimTest, DeterministicInSeed) {
  const auto a = SimulateLoanNetwork(SmallSim());
  const auto b = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->true_self_risk, b->true_self_risk);
  EXPECT_EQ(a->static_features, b->static_features);
}

TEST(LoanSimTest, DefaultRatesPlausible) {
  const auto data = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(data.ok());
  for (std::size_t y = 0; y < data->labels.size(); ++y) {
    const double rate =
        std::accumulate(data->labels[y].begin(), data->labels[y].end(), 0.0) /
        static_cast<double>(data->labels[y].size());
    EXPECT_GT(rate, 0.02) << "year " << y;
    EXPECT_LT(rate, 0.6) << "year " << y;
  }
}

TEST(LoanSimTest, ContagionContributesDefaults) {
  const auto data = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(data.ok());
  std::size_t contagion = 0;
  std::size_t total = 0;
  for (std::size_t y = 0; y < data->labels.size(); ++y) {
    for (std::size_t i = 0; i < data->labels[y].size(); ++i) {
      if (data->labels[y][i] > 0.5) {
        ++total;
        if (data->contagion_caused[y][i]) ++contagion;
      }
    }
  }
  ASSERT_GT(total, 0u);
  const double share = static_cast<double>(contagion) / static_cast<double>(total);
  // The contagion channel must matter (else Table 3's ordering is vacuous)
  // without dominating everything.
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.8);
}

TEST(LoanSimTest, ProbabilitiesValid) {
  const auto data = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(data.ok());
  for (const auto& year : data->true_self_risk) {
    for (const double p : year) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  for (const double p : data->true_diffusion) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LoanSimTest, TrueYearGraphMatchesData) {
  const auto data = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(data.ok());
  const auto g = data->TrueYearGraph(2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), data->graph.num_nodes());
  EXPECT_EQ(g->num_edges(), data->graph.num_edges());
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(g->self_risk(v), data->true_self_risk[2][v]);
  }
  EXPECT_FALSE(data->TrueYearGraph(99).ok());
}

TEST(LoanSimTest, RiskDriftsAcrossYears) {
  const auto data = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(data.ok());
  // Mean self-risk must differ year to year (the drift term).
  double mean0 = 0.0;
  double mean4 = 0.0;
  for (std::size_t i = 0; i < data->true_self_risk[0].size(); ++i) {
    mean0 += data->true_self_risk[0][i];
    mean4 += data->true_self_risk[4][i];
  }
  EXPECT_NE(mean0, mean4);
}

TEST(LoanSimTest, HubExists) {
  const auto data = SimulateLoanNetwork(SmallSim());
  ASSERT_TRUE(data.ok());
  EXPECT_GT(data->graph.OutDegree(0) + data->graph.InDegree(0), 50u);
}

}  // namespace
}  // namespace vulnds
