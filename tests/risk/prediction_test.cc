#include "risk/prediction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"

namespace vulnds {
namespace {

// One small shared simulation for all harness tests (expensive to build).
const TemporalLoanData& SharedData() {
  static const TemporalLoanData data = [] {
    LoanSimOptions o;
    o.num_firms = 400;
    o.seed = 404;
    return SimulateLoanNetwork(o).MoveValue();
  }();
  return data;
}

CaseStudyOptions FastOptions() {
  CaseStudyOptions o;
  o.detector_samples = 500;
  o.bsrbk_budget = 200;
  o.ris_sets = 500;
  return o;
}

TEST(RiskMethodTest, ThirteenRowsInTableOrder) {
  EXPECT_EQ(AllRiskMethods().size(), 13u);
  EXPECT_EQ(RiskMethodName(AllRiskMethods().front()), "Wide");
  EXPECT_EQ(RiskMethodName(AllRiskMethods().back()), "BSR");
}

TEST(RiskMethodTest, NamesUnique) {
  std::set<std::string> names;
  for (const RiskMethod m : AllRiskMethods()) {
    EXPECT_TRUE(names.insert(RiskMethodName(m)).second);
  }
}

TEST(ScoreYearTest, ValidatesYearIndices) {
  const auto& data = SharedData();
  EXPECT_FALSE(ScoreYear(data, RiskMethod::kWide, FastOptions(), 99).ok());
  CaseStudyOptions bad = FastOptions();
  bad.train_year_index = 42;
  EXPECT_FALSE(ScoreYear(data, RiskMethod::kWide, bad, 2).ok());
}

// Every method must emit one finite score per firm.
class ScoreShapeSweep : public ::testing::TestWithParam<RiskMethod> {};

TEST_P(ScoreShapeSweep, OneScorePerFirm) {
  const auto& data = SharedData();
  const auto scores = ScoreYear(data, GetParam(), FastOptions(), 2);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->size(), data.graph.num_nodes());
  for (const double s : *scores) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ScoreShapeSweep,
                         ::testing::ValuesIn(AllRiskMethods()),
                         [](const ::testing::TestParamInfo<RiskMethod>& info) {
                           std::string name = RiskMethodName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(CaseStudyTest, FeatureModelsBeatChance) {
  const auto& data = SharedData();
  for (const RiskMethod m : {RiskMethod::kWide, RiskMethod::kGbdt}) {
    const auto scores = ScoreYear(data, m, FastOptions(), 2);
    ASSERT_TRUE(scores.ok());
    EXPECT_GT(AreaUnderRoc(*scores, data.labels[2]), 0.6) << RiskMethodName(m);
  }
}

TEST(CaseStudyTest, DetectorBeatsPureStructure) {
  // The paper's headline: uncertainty-aware detection outperforms
  // structural centralities on default prediction.
  const auto& data = SharedData();
  const auto bsr = ScoreYear(data, RiskMethod::kBsr, FastOptions(), 2);
  const auto pagerank = ScoreYear(data, RiskMethod::kPageRank, FastOptions(), 2);
  ASSERT_TRUE(bsr.ok() && pagerank.ok());
  const double auc_bsr = AreaUnderRoc(*bsr, data.labels[2]);
  const double auc_pr = AreaUnderRoc(*pagerank, data.labels[2]);
  EXPECT_GT(auc_bsr, 0.65);
  EXPECT_GT(auc_bsr, auc_pr);
}

TEST(CaseStudyTest, RunCaseStudyProducesFullTable) {
  const auto& data = SharedData();
  CaseStudyOptions o = FastOptions();
  o.test_year_indices = {2, 4};
  const auto result = RunCaseStudy(data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 13u);
  EXPECT_EQ(result->test_years, (std::vector<int>{2014, 2016}));
  for (const CaseStudyRow& row : result->rows) {
    ASSERT_EQ(row.auc.size(), 2u);
    for (const double auc : row.auc) {
      EXPECT_GE(auc, 0.0);
      EXPECT_LE(auc, 1.0);
    }
  }
}

TEST(CaseStudyTest, RejectsBadTestYear) {
  const auto& data = SharedData();
  CaseStudyOptions o = FastOptions();
  o.test_year_indices = {17};
  EXPECT_FALSE(RunCaseStudy(data, o).ok());
}

}  // namespace
}  // namespace vulnds
