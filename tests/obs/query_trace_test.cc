// QueryTrace with an injected fake clock: stage spans, auto-close on
// back-to-back BeginStage, and totals.

#include "obs/query_trace.h"

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

namespace vulnds::obs {
namespace {

// Deterministic clock the tests advance by hand.
struct FakeClock {
  std::shared_ptr<int64_t> now = std::make_shared<int64_t>(0);
  ClockMicros fn() const {
    auto held = now;
    return [held] { return *held; };
  }
  void Advance(int64_t micros) { *now += micros; }
};

TEST(QueryTraceTest, RecordsStagesWithInjectedClock) {
  FakeClock clock;
  QueryTrace trace(clock.fn());
  trace.BeginStage("bounds");
  clock.Advance(100);
  trace.EndStage();
  trace.BeginStage("sampling");
  clock.Advance(250);
  trace.EndStage();

  ASSERT_EQ(trace.stages().size(), 2u);
  EXPECT_EQ(trace.stages()[0].name, "bounds");
  EXPECT_EQ(trace.stages()[0].micros, 100);
  EXPECT_EQ(trace.stages()[1].name, "sampling");
  EXPECT_EQ(trace.stages()[1].micros, 250);
  EXPECT_EQ(trace.TotalMicros(), 350);
}

TEST(QueryTraceTest, BeginStageClosesAnOpenStage) {
  FakeClock clock;
  QueryTrace trace(clock.fn());
  trace.BeginStage("reduce");
  clock.Advance(40);
  trace.BeginStage("sampling");  // implicitly ends "reduce" at 40us
  clock.Advance(5);
  trace.EndStage();

  ASSERT_EQ(trace.stages().size(), 2u);
  EXPECT_EQ(trace.stages()[0].name, "reduce");
  EXPECT_EQ(trace.stages()[0].micros, 40);
  EXPECT_EQ(trace.stages()[1].micros, 5);
}

TEST(QueryTraceTest, EndStageWithoutBeginIsANoOp) {
  QueryTrace trace;
  trace.EndStage();
  EXPECT_TRUE(trace.stages().empty());
  EXPECT_EQ(trace.TotalMicros(), 0);
}

TEST(QueryTraceTest, AddStageAppendsPreMeasuredSpan) {
  QueryTrace trace;
  trace.AddStage("cache_lookup", 12);
  ASSERT_EQ(trace.stages().size(), 1u);
  EXPECT_EQ(trace.stages()[0].micros, 12);
  EXPECT_EQ(trace.TotalMicros(), 12);
}

TEST(QueryTraceTest, NullClockFallsBackToSteadyClock) {
  QueryTrace trace;
  const int64_t a = trace.Now();
  const int64_t b = trace.Now();
  EXPECT_GE(b, a);  // steady clock is monotone
}

TEST(QueryTraceTest, WaveDetailDefaultsToZero) {
  QueryTrace trace;
  EXPECT_EQ(trace.waves_issued, 0u);
  EXPECT_EQ(trace.worlds_wasted, 0u);
  EXPECT_EQ(trace.early_stop_position, 0u);
  EXPECT_FALSE(trace.early_stopped);
}

}  // namespace
}  // namespace vulnds::obs
