// Unit tests for the metric registry: exposition escaping, histogram
// cumulative invariants, quantile estimation, and concurrent
// read-while-write safety (the TSan job runs this file under
// -fsanitize=thread, so the "concurrent" tests double as race detectors).

#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vulnds::obs {
namespace {

TEST(CounterTest, IncrementAndSet) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Set(7);  // scrape-time mirror hook
  EXPECT_EQ(c.Value(), 7u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(EscapeTest, LabelValueEscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(EscapeTest, HelpEscapesBackslashAndNewlineButNotQuote) {
  EXPECT_EQ(EscapeHelp("a\\b\nc"), "a\\\\b\\nc");
  EXPECT_EQ(EscapeHelp("say \"hi\""), "say \"hi\"");
}

TEST(EscapeTest, EscapedLabelsSurviveTheRenderer) {
  MetricRegistry registry;
  registry
      .GetCounter("esc_total", "help with \"quotes\"\nand newline",
                  {{"path", "C:\\tmp\n\"x\""}})
      ->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP esc_total help with \"quotes\"\\nand newline\n"),
            std::string::npos);
  EXPECT_NE(text.find("esc_total{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 1\n"),
            std::string::npos);
  // The rendered body must be one physical line per series: the raw newline
  // in the label value may never reach the output unescaped.
  EXPECT_EQ(text.find("C:\\tmp\n"), std::string::npos);
}

TEST(RegistryTest, GetOrCreateReturnsSameMetric) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x_total", "x", {{"verb", "detect"}});
  Counter* b = registry.GetCounter("x_total", "ignored", {{"verb", "detect"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("x_total", "x", {{"verb", "truth"}});
  EXPECT_NE(a, other);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(RegistryTest, KindConflictThrows) {
  MetricRegistry registry;
  registry.GetCounter("dual", "as counter");
  EXPECT_THROW(registry.GetGauge("dual", "as gauge"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("dual", "as histogram", {1.0}),
               std::logic_error);
}

TEST(RegistryTest, RenderOrdersFamiliesByNameAndSeriesByLabels) {
  MetricRegistry registry;
  registry.GetCounter("b_total", "b")->Increment(2);
  registry.GetGauge("a_gauge", "a")->Set(1);
  registry.GetCounter("c_total", "c", {{"verb", "truth"}})->Increment();
  registry.GetCounter("c_total", "c", {{"verb", "detect"}})->Increment(3);
  const std::string text = registry.RenderPrometheus();
  const auto a = text.find("# HELP a_gauge");
  const auto b = text.find("# HELP b_total");
  const auto c = text.find("# HELP c_total");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // Series render in label order within the family.
  EXPECT_LT(text.find("c_total{verb=\"detect\"} 3"),
            text.find("c_total{verb=\"truth\"} 1"));
  EXPECT_NE(text.find("# TYPE a_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_total counter\n"), std::string::npos);
}

TEST(HistogramTest, BucketBoundsAreNormalized) {
  Histogram h({5.0, 1.0, 5.0, std::numeric_limits<double>::infinity(),
               std::nan(""), 2.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(HistogramTest, CumulativeCountsAreMonotoneAndEndAtCount) {
  Histogram h({1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 50.0, 500.0, 1e9}) h.Observe(v);
  const std::vector<uint64_t> cum = h.CumulativeCounts();
  ASSERT_EQ(cum.size(), 4u);  // three finite bounds + the +Inf bucket
  // le="1" includes the value exactly on the edge.
  EXPECT_EQ(cum[0], 2u);
  EXPECT_EQ(cum[1], 3u);
  EXPECT_EQ(cum[2], 4u);
  EXPECT_EQ(cum[3], 6u);  // +Inf holds everything
  for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
  EXPECT_EQ(cum.back(), h.Count());
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 5.0 + 50.0 + 500.0 + 1e9);
}

TEST(HistogramTest, RenderedSeriesKeepCumulativeInvariants) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("lat_micros", "latency", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_micros histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_sum 105.5\n"), std::string::npos);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.Observe(5.0);   // (0, 10]
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // (10, 20]
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);   // rank 1 of 10 in (0, 10]
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);  // rank 10: top of first bucket
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
  // Rank 15 = 5th of 10 inside (10, 20].
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 15.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram overflow({1.0, 2.0});
  overflow.Observe(100.0);  // lands in +Inf
  // +Inf ranks answer the largest finite bound (documented lower bound).
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.99), 2.0);

  Histogram h({10.0});
  h.Observe(5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));  // q is clamped
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(LatencyBucketsTest, LadderIsStrictlyIncreasingAndSpansServeRange) {
  const std::vector<double>& b = LatencyBucketsMicros();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_LE(b.front(), 1.0);        // cached hits
  EXPECT_GE(b.back(), 10'000'000);  // ten-second cold detects
}

// Concurrent registration and recording against one registry while another
// thread renders: exercised under TSan by the sanitizer CI job. The
// rendered exposition must keep every histogram's cumulative invariant
// even mid-Observe.
TEST(RegistryConcurrencyTest, ReadWhileWriteKeepsInvariants) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("conc_micros", "concurrent", {1.0, 2.0, 4.0});
  Counter* c = registry.GetCounter("conc_total", "concurrent");
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      h->Observe(static_cast<double>(i % 6));
      c->Increment();
      ++i;
    }
  });
  std::thread registrar([&] {
    for (int i = 0; i < 200; ++i) {
      registry
          .GetCounter("reg_total", "registered live",
                      {{"i", std::to_string(i % 8)}})
          ->Increment();
    }
  });

  for (int round = 0; round < 50; ++round) {
    const std::vector<uint64_t> cum = h->CumulativeCounts();
    for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
    const std::string text = registry.RenderPrometheus();
    EXPECT_NE(text.find("# TYPE conc_micros histogram"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  registrar.join();

  // Quiesced: the final render agrees with the final counts.
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("conc_total " + std::to_string(c->Value()) + "\n"),
            std::string::npos);
  EXPECT_EQ(h->CumulativeCounts().back(), h->Count());
}

}  // namespace
}  // namespace vulnds::obs
