// Slow-query log: threshold gating, JSONL shape, and JSON escaping.

#include "obs/slow_query_log.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace vulnds::obs {
namespace {

SlowQueryRecord BasicRecord(int64_t micros) {
  SlowQueryRecord r;
  r.verb = "detect";
  r.graph = "g@v2";
  r.options = "method=BSRBK k=5";
  r.total_micros = micros;
  r.cached = false;
  return r;
}

TEST(SlowQueryLogTest, ThresholdGatesLogging) {
  std::ostringstream sink;
  SlowQueryLog log(&sink, 1000);
  EXPECT_FALSE(log.MaybeLog(BasicRecord(999)));
  EXPECT_TRUE(log.MaybeLog(BasicRecord(1000)));  // at-threshold logs
  EXPECT_TRUE(log.MaybeLog(BasicRecord(5000)));
  EXPECT_EQ(log.logged(), 2u);
  // One line per logged record.
  std::istringstream lines(sink.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 2);
}

TEST(SlowQueryLogTest, NegativeThresholdDisables) {
  std::ostringstream sink;
  SlowQueryLog log(&sink, -1);
  EXPECT_FALSE(log.MaybeLog(BasicRecord(1'000'000'000)));
  EXPECT_EQ(log.logged(), 0u);
  EXPECT_TRUE(sink.str().empty());
}

TEST(SlowQueryLogTest, ZeroThresholdLogsEverything) {
  std::ostringstream sink;
  SlowQueryLog log(&sink, 0);
  EXPECT_TRUE(log.MaybeLog(BasicRecord(0)));
  EXPECT_EQ(log.logged(), 1u);
}

TEST(FormatSlowQueryRecordTest, BasicShape) {
  const std::string json = FormatSlowQueryRecord(BasicRecord(1234));
  EXPECT_EQ(json,
            "{\"verb\":\"detect\",\"graph\":\"g@v2\","
            "\"options\":\"method=BSRBK k=5\",\"total_micros\":1234,"
            "\"cached\":false}");
}

TEST(FormatSlowQueryRecordTest, TraceAddsStagesAndWaveDetail) {
  QueryTrace trace;
  trace.AddStage("bounds", 10);
  trace.AddStage("sampling", 90);
  trace.waves_issued = 3;
  trace.worlds_wasted = 7;
  trace.early_stop_position = 480;
  trace.early_stopped = true;

  SlowQueryRecord r = BasicRecord(100);
  r.cached = true;
  r.trace = &trace;
  const std::string json = FormatSlowQueryRecord(r);
  EXPECT_NE(json.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":[{\"name\":\"bounds\",\"micros\":10},"
                      "{\"name\":\"sampling\",\"micros\":90}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"waves_issued\":3"), std::string::npos);
  EXPECT_NE(json.find("\"worlds_wasted\":7"), std::string::npos);
  EXPECT_NE(json.find("\"early_stop_position\":480"), std::string::npos);
  EXPECT_NE(json.find("\"early_stopped\":true"), std::string::npos);
  // Single physical line regardless of content.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscapeTest, EscapedGraphNameSurvivesTheFormatter) {
  SlowQueryRecord r = BasicRecord(1);
  r.graph = "g\"1\"\n";
  const std::string json = FormatSlowQueryRecord(r);
  EXPECT_NE(json.find("\"graph\":\"g\\\"1\\\"\\n\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace vulnds::obs
