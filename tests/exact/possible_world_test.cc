#include "exact/possible_world.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(EvaluateWorldTest, NoDefaultsNoEdges) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  const std::vector<char> none(3, 0);
  const std::vector<char> edges(2, 1);
  const std::vector<char> out = EvaluateWorld(g, none, edges);
  EXPECT_EQ(std::count(out.begin(), out.end(), 1), 0);
}

TEST(EvaluateWorldTest, PropagatesAlongSurvivingChain) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  std::vector<char> self = {1, 0, 0};
  std::vector<char> edges = {1, 1};
  std::vector<char> out = EvaluateWorld(g, self, edges);
  EXPECT_EQ(out, (std::vector<char>{1, 1, 1}));
  edges = {1, 0};  // second hop dead
  out = EvaluateWorld(g, self, edges);
  EXPECT_EQ(out, (std::vector<char>{1, 1, 0}));
}

TEST(EvaluateWorldTest, NoBackwardPropagation) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  const std::vector<char> self = {0, 0, 1};
  const std::vector<char> edges = {1, 1};
  const std::vector<char> out = EvaluateWorld(g, self, edges);
  EXPECT_EQ(out, (std::vector<char>{0, 0, 1}));
}

TEST(ExactTest, SingleNode) {
  UncertainGraphBuilder b(1);
  ASSERT_TRUE(b.SetSelfRisk(0, 0.37).ok());
  const auto probs = ExactDefaultProbabilities(b.Build().MoveValue());
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[0], 0.37, 1e-12);
}

TEST(ExactTest, ChainHandComputed) {
  // a -> b -> c, all probabilities 0.2.
  UncertainGraph g = testing::ChainGraph(0.2, 0.2);
  const auto probs = ExactDefaultProbabilities(g);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[0], 0.2, 1e-12);
  // p(b) = 1 - 0.8 * (1 - 0.2*0.2) = 0.232 (paper Example 1 structure).
  EXPECT_NEAR((*probs)[1], 0.232, 1e-12);
  // p(c) = 1 - 0.8 * (1 - p(b)*0.2); independence holds on a chain.
  EXPECT_NEAR((*probs)[2], 1.0 - 0.8 * (1.0 - 0.232 * 0.2), 1e-12);
}

TEST(ExactTest, PaperExampleNodeAandB) {
  // Figure 3 graph with every probability 0.2; Example 1 gives p(A) = 0.2
  // and p(B) = 0.232.
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const auto probs = ExactDefaultProbabilities(g);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[0], 0.2, 1e-12);
  EXPECT_NEAR((*probs)[1], 0.232, 1e-12);
  // E is downstream of everything, so it must be the most vulnerable node.
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_GT((*probs)[4], (*probs)[v]);
  }
}

TEST(ExactTest, DeterministicEntitiesCostNoBits) {
  // 30 nodes with ps in {0, 1} and certain edges: enumerable despite size.
  UncertainGraphBuilder b(30);
  ASSERT_TRUE(b.SetSelfRisk(0, 1.0).ok());
  for (NodeId v = 0; v + 1 < 30; ++v) {
    ASSERT_TRUE(b.AddEdge(v, v + 1, 1.0).ok());
  }
  const auto probs = ExactDefaultProbabilities(b.Build().MoveValue());
  ASSERT_TRUE(probs.ok());
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_NEAR((*probs)[v], 1.0, 1e-12);
  }
}

TEST(ExactTest, ReliabilityReduction) {
  // The #P-hardness construction: ps(v)=1 for the source only; p(u) is then
  // the s-t reliability. For a single edge with survival 0.6 that is 0.6.
  UncertainGraphBuilder b(2);
  ASSERT_TRUE(b.SetSelfRisk(0, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 0.6).ok());
  const auto probs = ExactDefaultProbabilities(b.Build().MoveValue());
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[1], 0.6, 1e-12);
}

TEST(ExactTest, DiamondCorrelationHandled) {
  // s -> a -> t, s -> b -> t with all edges 0.5, ps(s) = 1, others 0.
  // Reliability(t) = P(path via a or via b) = 1 - (1 - 0.25)^2 = 0.4375.
  UncertainGraphBuilder b(4);
  ASSERT_TRUE(b.SetSelfRisk(0, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(b.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(b.AddEdge(1, 3, 0.5).ok());
  ASSERT_TRUE(b.AddEdge(2, 3, 0.5).ok());
  const auto probs = ExactDefaultProbabilities(b.Build().MoveValue());
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[3], 0.4375, 1e-12);
}

TEST(ExactTest, TooManyUncertainBitsRejected) {
  UncertainGraph g = ErdosRenyi(30, 40, GraphProbOptions{}, 5).MoveValue();
  // 30 uncertain nodes + 40 uncertain edges = 70 bits > cap.
  EXPECT_EQ(ExactDefaultProbabilities(g).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExactTest, ProbabilitiesAreProbabilities) {
  UncertainGraph g = testing::RandomSmallGraph(5, 0.3, 17);
  const auto probs = ExactDefaultProbabilities(g);
  ASSERT_TRUE(probs.ok());
  double mass_check = 0.0;
  for (const double p : *probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    mass_check += p;
  }
  EXPECT_GE(mass_check, 0.0);
}

TEST(ExactTest, SelfRiskIsLowerBoundOfDefaultProbability) {
  UncertainGraph g = testing::RandomSmallGraph(5, 0.4, 23);
  const auto probs = ExactDefaultProbabilities(g);
  ASSERT_TRUE(probs.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE((*probs)[v], g.self_risk(v) - 1e-12);
  }
}

TEST(ExactTopKTest, OrderAndTieBreak) {
  UncertainGraphBuilder b(3);
  ASSERT_TRUE(b.SetSelfRisk(0, 0.5).ok());
  ASSERT_TRUE(b.SetSelfRisk(1, 0.9).ok());
  ASSERT_TRUE(b.SetSelfRisk(2, 0.5).ok());
  const auto topk = ExactTopK(b.Build().MoveValue(), 3);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(*topk, (std::vector<NodeId>{1, 0, 2}));  // tie 0 vs 2 -> id order
}

TEST(ExactTopKTest, KValidation) {
  UncertainGraph g = testing::ChainGraph(0.2, 0.2);
  EXPECT_FALSE(ExactTopK(g, 4).ok());
  const auto top0 = ExactTopK(g, 0);
  ASSERT_TRUE(top0.ok());
  EXPECT_TRUE(top0->empty());
}

}  // namespace
}  // namespace vulnds
