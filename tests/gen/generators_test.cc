#include "gen/generators.h"

#include <gtest/gtest.h>

#include "gen/financial.h"
#include "gen/interbank.h"
#include "graph/graph_stats.h"

namespace vulnds {
namespace {

GraphProbOptions UniformProbs() { return GraphProbOptions{}; }

TEST(ErdosRenyiTest, ExactCounts) {
  Result<UncertainGraph> g = ErdosRenyi(100, 500, UniformProbs(), 1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 100u);
  EXPECT_EQ(g->num_edges(), 500u);
}

TEST(ErdosRenyiTest, NoSelfLoopsNoDuplicates) {
  UncertainGraph g = ErdosRenyi(50, 600, UniformProbs(), 2).MoveValue();
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const UncertainEdge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second) << "duplicate edge";
  }
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  UncertainGraph a = ErdosRenyi(40, 100, UniformProbs(), 7).MoveValue();
  UncertainGraph b = ErdosRenyi(40, 100, UniformProbs(), 7).MoveValue();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].src, b.edges()[e].src);
    EXPECT_EQ(a.edges()[e].dst, b.edges()[e].dst);
    EXPECT_DOUBLE_EQ(a.edges()[e].prob, b.edges()[e].prob);
  }
}

TEST(ErdosRenyiTest, SeedChangesTopology) {
  UncertainGraph a = ErdosRenyi(40, 100, UniformProbs(), 7).MoveValue();
  UncertainGraph b = ErdosRenyi(40, 100, UniformProbs(), 8).MoveValue();
  int diff = 0;
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    if (a.edges()[e].src != b.edges()[e].src ||
        a.edges()[e].dst != b.edges()[e].dst) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(ErdosRenyiTest, RejectsInfeasibleRequests) {
  EXPECT_FALSE(ErdosRenyi(1, 1, UniformProbs(), 1).ok());
  EXPECT_FALSE(ErdosRenyi(3, 7, UniformProbs(), 1).ok());  // > n(n-1) = 6
}

TEST(ErdosRenyiTest, ProbabilitiesInRange) {
  UncertainGraph g = ErdosRenyi(30, 200, UniformProbs(), 3).MoveValue();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.self_risk(v), 0.0);
    EXPECT_LE(g.self_risk(v), 1.0);
  }
  for (const UncertainEdge& e : g.edges()) {
    EXPECT_GE(e.prob, 0.0);
    EXPECT_LE(e.prob, 1.0);
  }
}

TEST(BarabasiAlbertTest, ProducesHeavyTail) {
  UncertainGraph g = BarabasiAlbert(2000, 4, UniformProbs(), 5).MoveValue();
  const GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 2000u);
  // Hubs should far exceed the average degree.
  EXPECT_GT(static_cast<double>(s.max_degree), 6.0 * s.avg_degree);
}

TEST(BarabasiAlbertTest, ValidatesParameters) {
  EXPECT_FALSE(BarabasiAlbert(10, 0, UniformProbs(), 1).ok());
  EXPECT_FALSE(BarabasiAlbert(3, 5, UniformProbs(), 1).ok());
}

TEST(BarabasiAlbertTest, Deterministic) {
  UncertainGraph a = BarabasiAlbert(200, 3, UniformProbs(), 11).MoveValue();
  UncertainGraph b = BarabasiAlbert(200, 3, UniformProbs(), 11).MoveValue();
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(WattsStrogatzTest, RingWithoutRewiring) {
  UncertainGraph g = WattsStrogatz(20, 2, 0.0, UniformProbs(), 1).MoveValue();
  EXPECT_EQ(g.num_edges(), 40u);  // each node -> 2 successors
  // Node 0 connects to 1 and 2.
  auto arcs = g.OutArcs(0);
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].neighbor, 1u);
  EXPECT_EQ(arcs[1].neighbor, 2u);
}

TEST(WattsStrogatzTest, RewiringKeepsGraphSimple) {
  UncertainGraph g = WattsStrogatz(100, 3, 0.5, UniformProbs(), 2).MoveValue();
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const UncertainEdge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second);
  }
}

TEST(WattsStrogatzTest, ValidatesParameters) {
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.1, UniformProbs(), 1).ok());
  EXPECT_FALSE(WattsStrogatz(10, 10, 0.1, UniformProbs(), 1).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.5, UniformProbs(), 1).ok());
}

TEST(PowerLawTest, HitsRequestedEdgeCount) {
  UncertainGraph g =
      PowerLawConfiguration(500, 3000, 2.1, 200, UniformProbs(), 3).MoveValue();
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_EQ(g.num_edges(), 3000u);
}

TEST(PowerLawTest, HeavyTailEmerges) {
  UncertainGraph g =
      PowerLawConfiguration(3000, 20000, 2.0, 1500, UniformProbs(), 4).MoveValue();
  const GraphStats s = ComputeStats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 4.0 * s.avg_degree);
}

TEST(PowerLawTest, ValidatesExponent) {
  EXPECT_FALSE(PowerLawConfiguration(10, 20, 1.0, 5, UniformProbs(), 1).ok());
}

TEST(InterbankTest, MatchesRequestedSize) {
  InterbankOptions opt;
  opt.num_banks = 125;
  opt.num_loans = 249;
  UncertainGraph g = GenerateInterbank(opt, 6).MoveValue();
  EXPECT_EQ(g.num_nodes(), 125u);
  EXPECT_EQ(g.num_edges(), 249u);
}

TEST(InterbankTest, CorePeripheryShape) {
  InterbankOptions opt;
  opt.num_banks = 125;
  opt.num_loans = 249;
  UncertainGraph g = GenerateInterbank(opt, 7).MoveValue();
  const GraphStats s = ComputeStats(g);
  // A money-center bank touches many counterparties.
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.avg_degree);
}

TEST(InterbankTest, RejectsInfeasible) {
  InterbankOptions opt;
  opt.num_banks = 1;
  EXPECT_FALSE(GenerateInterbank(opt, 1).ok());
}

TEST(GuaranteeTest, SparseWithMegaHub) {
  GuaranteeOptions opt;
  opt.num_firms = 3000;
  opt.num_guarantees = 3450;
  opt.hub_fraction = 0.4;
  UncertainGraph g = GenerateGuarantee(opt, 8).MoveValue();
  EXPECT_EQ(g.num_edges(), 3450u);
  const GraphStats s = ComputeStats(g);
  // The hub absorbs roughly hub_fraction of all edges.
  EXPECT_GT(s.max_degree, 1000u);
  EXPECT_LT(s.avg_degree, 1.5);
}

TEST(GuaranteeTest, HubIsNodeZero) {
  GuaranteeOptions opt;
  opt.num_firms = 500;
  opt.num_guarantees = 600;
  UncertainGraph g = GenerateGuarantee(opt, 9).MoveValue();
  std::size_t best = 0;
  NodeId best_node = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t deg = g.OutDegree(v) + g.InDegree(v);
    if (deg > best) {
      best = deg;
      best_node = v;
    }
  }
  EXPECT_EQ(best_node, 0u);
}

TEST(FraudTest, BipartiteDirection) {
  FraudOptions opt;
  opt.num_consumers = 300;
  opt.num_merchants = 50;
  opt.num_trades = 2000;
  UncertainGraph g = GenerateFraud(opt, 10).MoveValue();
  EXPECT_EQ(g.num_nodes(), 350u);
  EXPECT_EQ(g.num_edges(), 2000u);
  for (const UncertainEdge& e : g.edges()) {
    EXPECT_LT(e.src, 300u);   // consumers
    EXPECT_GE(e.dst, 300u);   // merchants
  }
}

TEST(FraudTest, MerchantPopularitySkewed) {
  FraudOptions opt;
  opt.num_consumers = 500;
  opt.num_merchants = 100;
  opt.num_trades = 10000;
  UncertainGraph g = GenerateFraud(opt, 11).MoveValue();
  // The most popular merchant should take a large share of trades.
  std::size_t max_in = 0;
  for (NodeId v = 500; v < 600; ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  EXPECT_GT(max_in, 10000u / 20);
}

}  // namespace
}  // namespace vulnds
