#include "gen/datasets.h"

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace vulnds {
namespace {

TEST(DatasetsTest, RegistryHasEightEntries) {
  EXPECT_EQ(AllDatasets().size(), 8u);
  EXPECT_EQ(EffectivenessDatasets().size(), 4u);
}

TEST(DatasetsTest, SpecsMatchTable2) {
  const DatasetSpec bitcoin = GetDatasetSpec(DatasetId::kBitcoin);
  EXPECT_EQ(bitcoin.name, "Bitcoin");
  EXPECT_EQ(bitcoin.num_nodes, 3783u);
  EXPECT_EQ(bitcoin.num_edges, 24186u);
  const DatasetSpec guarantee = GetDatasetSpec(DatasetId::kGuarantee);
  EXPECT_EQ(guarantee.num_nodes, 31309u);
  EXPECT_EQ(guarantee.num_edges, 35987u);
  EXPECT_EQ(guarantee.max_degree, 14362u);
  const DatasetSpec p2p = GetDatasetSpec(DatasetId::kP2P);
  EXPECT_EQ(p2p.num_nodes, 62586u);
}

TEST(DatasetsTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const DatasetId id : AllDatasets()) {
    EXPECT_TRUE(names.insert(DatasetName(id)).second);
  }
}

TEST(DatasetsTest, ScaleValidation) {
  EXPECT_FALSE(MakeDataset(DatasetId::kCitation, 0.0, 1).ok());
  EXPECT_FALSE(MakeDataset(DatasetId::kCitation, 1.5, 1).ok());
  EXPECT_TRUE(MakeDataset(DatasetId::kCitation, 0.5, 1).ok());
}

TEST(DatasetsTest, DeterministicInSeed) {
  UncertainGraph a = MakeDataset(DatasetId::kInterbank, 1.0, 3).MoveValue();
  UncertainGraph b = MakeDataset(DatasetId::kInterbank, 1.0, 3).MoveValue();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].src, b.edges()[e].src);
    EXPECT_DOUBLE_EQ(a.edges()[e].prob, b.edges()[e].prob);
  }
}

// Parameterized sweep: every dataset at small scale is well formed and
// roughly matches the scaled Table 2 row.
class DatasetSweep : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetSweep, ScaledInstanceMatchesSpecShape) {
  const DatasetId id = GetParam();
  const double scale = 0.05;
  Result<UncertainGraph> g = MakeDataset(id, scale, 42);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const DatasetSpec spec = GetDatasetSpec(id);
  const GraphStats s = ComputeStats(*g);
  // Node/edge counts within 35% of the scaled target (generators take
  // liberties on tiny instances; the floor of 16/24 dominates at 5%).
  const double target_nodes =
      std::max(16.0, static_cast<double>(spec.num_nodes) * scale);
  EXPECT_GT(static_cast<double>(s.num_nodes), 0.5 * target_nodes);
  EXPECT_LT(static_cast<double>(s.num_nodes), 2.0 * target_nodes + 32);
  EXPECT_GT(s.num_edges, 0u);
  // All probabilities valid.
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    ASSERT_GE(g->self_risk(v), 0.0);
    ASSERT_LE(g->self_risk(v), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::ValuesIn(AllDatasets()),
                         [](const ::testing::TestParamInfo<DatasetId>& info) {
                           return DatasetName(info.param);
                         });

TEST(DatasetsTest, FullScaleInterbankMatchesTable2Exactly) {
  UncertainGraph g = MakeDataset(DatasetId::kInterbank, 1.0, 1).MoveValue();
  EXPECT_EQ(g.num_nodes(), 125u);
  EXPECT_EQ(g.num_edges(), 249u);
}

TEST(DatasetsTest, FullScaleCitationMatchesTable2Exactly) {
  UncertainGraph g = MakeDataset(DatasetId::kCitation, 1.0, 1).MoveValue();
  EXPECT_EQ(g.num_nodes(), 2617u);
  EXPECT_EQ(g.num_edges(), 2985u);
}

}  // namespace
}  // namespace vulnds
