#include "rank/inf_max.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(RisTest, CertainChainInfluence) {
  // a -> b -> c with probability-1 edges: influence(a) = 3, influence(b) =
  // 2, influence(c) = 1 (exactly, because every RR set is deterministic).
  UncertainGraph g = testing::ChainGraph(0.0, 1.0);
  RisSketches ris(g, 3000, 1);
  EXPECT_NEAR(ris.EstimateInfluence(0), 3.0, 0.2);
  EXPECT_NEAR(ris.EstimateInfluence(1), 2.0, 0.2);
  EXPECT_NEAR(ris.EstimateInfluence(2), 1.0, 0.2);
}

TEST(RisTest, ZeroProbabilityEdgesIsolate) {
  // Dead edges make every RR set a singleton {target}; the influence of
  // every node is 1 in expectation (targets are sampled uniformly, so the
  // estimate carries multinomial noise).
  UncertainGraph g = testing::ChainGraph(0.0, 0.0);
  RisSketches ris(g, 3000, 2);
  double total = 0.0;
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_NEAR(ris.EstimateInfluence(v), 1.0, 0.15);
    total += ris.EstimateInfluence(v);
  }
  EXPECT_NEAR(total, 3.0, 1e-9);  // singleton sets partition the draws
}

TEST(RisTest, ScoresVectorMatchesPerNodeCalls) {
  UncertainGraph g = testing::RandomSmallGraph(15, 0.2, 3);
  RisSketches ris(g, 500, 3);
  const std::vector<double> scores = ris.InfluenceScores();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(scores[v], ris.EstimateInfluence(v));
  }
}

TEST(RisTest, DeterministicInSeed) {
  UncertainGraph g = testing::RandomSmallGraph(15, 0.2, 4);
  RisSketches a(g, 400, 9);
  RisSketches b(g, 400, 9);
  EXPECT_EQ(a.InfluenceScores(), b.InfluenceScores());
}

TEST(RisTest, SeedSelectionPrefersSource) {
  // Star with certain edges out of the hub: the hub is the best seed.
  UncertainGraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) testing::CheckOk(b.AddEdge(0, v, 1.0));
  UncertainGraph g = b.Build().MoveValue();
  RisSketches ris(g, 2000, 5);
  const std::vector<NodeId> seeds = ris.SelectSeeds(1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(RisTest, GreedyCoversDisjointComponents) {
  // Two disjoint certain chains: the two heads together dominate.
  UncertainGraphBuilder b(6);
  testing::CheckOk(b.AddEdge(0, 1, 1.0));
  testing::CheckOk(b.AddEdge(1, 2, 1.0));
  testing::CheckOk(b.AddEdge(3, 4, 1.0));
  testing::CheckOk(b.AddEdge(4, 5, 1.0));
  UncertainGraph g = b.Build().MoveValue();
  RisSketches ris(g, 3000, 6);
  std::vector<NodeId> seeds = ris.SelectSeeds(2);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds, (std::vector<NodeId>{0, 3}));
}

TEST(RisTest, SelectSeedsClampsK) {
  UncertainGraph g = testing::ChainGraph(0.0, 0.5);
  RisSketches ris(g, 100, 7);
  EXPECT_EQ(ris.SelectSeeds(10).size(), 3u);
  EXPECT_TRUE(ris.SelectSeeds(0).empty());
}

TEST(RisTest, NumSetsReported) {
  UncertainGraph g = testing::ChainGraph(0.0, 0.5);
  RisSketches ris(g, 123, 8);
  EXPECT_EQ(ris.num_sets(), 123u);
}

}  // namespace
}  // namespace vulnds
