#include "rank/centrality.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(BetweennessTest, DirectedPath) {
  // a -> b -> c: only b lies on a shortest path (a to c).
  UncertainGraph g = testing::ChainGraph(0.1, 0.5);
  const std::vector<double> bc = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(BetweennessTest, StarCenterDominates) {
  // Edges in and out of the center: center sits on every periphery pair.
  UncertainGraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) {
    testing::CheckOk(b.AddEdge(v, 0, 0.5));
    testing::CheckOk(b.AddEdge(0, v, 0.5));
  }
  const std::vector<double> bc = BetweennessCentrality(b.Build().MoveValue());
  // 4 peripheries, 4*3 ordered pairs all through the center.
  EXPECT_DOUBLE_EQ(bc[0], 12.0);
  for (NodeId v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(BetweennessTest, SplitShortestPathsShareCredit) {
  // s -> a -> t and s -> b -> t: a and b each carry half the s-t pair.
  UncertainGraphBuilder b(4);
  testing::CheckOk(b.AddEdge(0, 1, 0.5));
  testing::CheckOk(b.AddEdge(0, 2, 0.5));
  testing::CheckOk(b.AddEdge(1, 3, 0.5));
  testing::CheckOk(b.AddEdge(2, 3, 0.5));
  const std::vector<double> bc = BetweennessCentrality(b.Build().MoveValue());
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(BetweennessTest, EmptyGraph) {
  UncertainGraphBuilder b(0);
  EXPECT_TRUE(BetweennessCentrality(b.Build().MoveValue()).empty());
}

TEST(PageRankTest, SumsToOne) {
  UncertainGraph g = testing::RandomSmallGraph(30, 0.1, 3);
  const std::vector<double> pr = PageRank(g);
  const double total = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankTest, UniformOnDirectedCycle) {
  UncertainGraphBuilder b(5);
  for (NodeId v = 0; v < 5; ++v) {
    testing::CheckOk(b.AddEdge(v, (v + 1) % 5, 0.5));
  }
  const std::vector<double> pr = PageRank(b.Build().MoveValue());
  for (const double p : pr) EXPECT_NEAR(p, 0.2, 1e-9);
}

TEST(PageRankTest, SinkAttractsMass) {
  // a -> c, b -> c: c must outrank a and b.
  UncertainGraphBuilder b(3);
  testing::CheckOk(b.AddEdge(0, 2, 0.5));
  testing::CheckOk(b.AddEdge(1, 2, 0.5));
  const std::vector<double> pr = PageRank(b.Build().MoveValue());
  EXPECT_GT(pr[2], pr[0]);
  EXPECT_GT(pr[2], pr[1]);
  EXPECT_NEAR(pr[0], pr[1], 1e-9);
}

TEST(PageRankTest, DanglingMassRedistributed) {
  // One dangling node must not leak probability mass.
  UncertainGraphBuilder b(3);
  testing::CheckOk(b.AddEdge(0, 1, 0.5));
  testing::CheckOk(b.AddEdge(1, 2, 0.5));  // 2 dangles
  const std::vector<double> pr = PageRank(b.Build().MoveValue());
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
}

TEST(PageRankTest, DampingZeroIsUniform) {
  UncertainGraph g = testing::RandomSmallGraph(10, 0.3, 5);
  PageRankOptions o;
  o.damping = 0.0;
  const std::vector<double> pr = PageRank(g, o);
  for (const double p : pr) EXPECT_NEAR(p, 0.1, 1e-12);
}

}  // namespace
}  // namespace vulnds
