#include "rank/kcore.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(KCoreTest, DirectedTriangle) {
  // Each node has total degree 2 and the cycle is its own 2-core.
  UncertainGraphBuilder b(3);
  testing::CheckOk(b.AddEdge(0, 1, 0.5));
  testing::CheckOk(b.AddEdge(1, 2, 0.5));
  testing::CheckOk(b.AddEdge(2, 0, 0.5));
  const std::vector<std::size_t> core = CoreNumbers(b.Build().MoveValue());
  EXPECT_EQ(core, (std::vector<std::size_t>{2, 2, 2}));
}

TEST(KCoreTest, PathPeelsToOne) {
  UncertainGraph g = testing::ChainGraph(0.1, 0.5);
  const std::vector<std::size_t> core = CoreNumbers(g);
  EXPECT_EQ(core, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(KCoreTest, IsolatedNodesAreZeroCore) {
  UncertainGraphBuilder b(4);
  testing::CheckOk(b.AddEdge(0, 1, 0.5));
  const std::vector<std::size_t> core = CoreNumbers(b.Build().MoveValue());
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(core[3], 0u);
  EXPECT_EQ(core[0], 1u);
  EXPECT_EQ(core[1], 1u);
}

TEST(KCoreTest, CliquePlusTail) {
  // Bidirectional 4-clique (degree 6 each) with a pendant tail.
  UncertainGraphBuilder b(5);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) testing::CheckOk(b.AddEdge(u, v, 0.5));
    }
  }
  testing::CheckOk(b.AddEdge(3, 4, 0.5));
  const std::vector<std::size_t> core = CoreNumbers(b.Build().MoveValue());
  // Clique nodes peel together well above the tail.
  EXPECT_EQ(core[4], 1u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_GE(core[v], 6u) << "clique node " << v;
  }
  EXPECT_EQ(core[0], core[1]);
  EXPECT_EQ(core[1], core[2]);
}

TEST(KCoreTest, CoreBoundedByDegree) {
  UncertainGraph g = testing::RandomSmallGraph(20, 0.2, 9);
  const std::vector<std::size_t> core = CoreNumbers(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(core[v], g.OutDegree(v) + g.InDegree(v));
  }
}

TEST(KCoreTest, EmptyGraph) {
  UncertainGraphBuilder b(0);
  EXPECT_TRUE(CoreNumbers(b.Build().MoveValue()).empty());
}

}  // namespace
}  // namespace vulnds
