// DeltaLog: append-time validation against base + staged state, lowest-id
// live resolution, and the staged-state views the commit path consumes.

#include "dyn/delta_log.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace vulnds::dyn {
namespace {

TEST(DeltaLogTest, ValidAppendsAccumulateInOrder) {
  const UncertainGraph base = testing::PaperExampleGraph(0.2);
  DeltaLog log(&base);
  EXPECT_TRUE(log.empty());
  ASSERT_TRUE(log.AddEdge(4, 0, 0.5).ok());
  ASSERT_TRUE(log.SetProb(0, 1, 0.9).ok());
  ASSERT_TRUE(log.DeleteEdge(3, 4).ok());
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records()[0].op, DeltaOp::kAddEdge);
  EXPECT_EQ(log.records()[1].op, DeltaOp::kSetProb);
  EXPECT_EQ(log.records()[2].op, DeltaOp::kDeleteEdge);
  // 6 base edges - 1 delete + 1 insert.
  EXPECT_EQ(log.live_edge_count(), 6u);
}

TEST(DeltaLogTest, RejectsInvalidEndpointsAndProbabilities) {
  const UncertainGraph base = testing::PaperExampleGraph(0.2);
  DeltaLog log(&base);
  EXPECT_EQ(log.AddEdge(0, 5, 0.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(log.AddEdge(7, 0, 0.5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(log.AddEdge(2, 2, 0.5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.AddEdge(0, 1, 1.5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.AddEdge(0, 1, -0.1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.SetProb(0, 1, 2.0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(log.empty()) << "rejected ops must not be recorded";
}

TEST(DeltaLogTest, DeleteAndSetProbRequireALiveEdge) {
  const UncertainGraph base = testing::PaperExampleGraph(0.2);
  DeltaLog log(&base);
  // (1, 0) is not an edge (only 0 -> 1 exists).
  EXPECT_EQ(log.DeleteEdge(1, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(log.SetProb(1, 0, 0.4).code(), StatusCode::kNotFound);
  // Deleting the same edge twice: the second delete has no live target.
  ASSERT_TRUE(log.DeleteEdge(0, 1).ok());
  EXPECT_EQ(log.DeleteEdge(0, 1).code(), StatusCode::kNotFound);
  // A deleted edge cannot be re-probed, but can be re-added and then probed.
  EXPECT_EQ(log.SetProb(0, 1, 0.4).code(), StatusCode::kNotFound);
  ASSERT_TRUE(log.AddEdge(0, 1, 0.3).ok());
  EXPECT_TRUE(log.SetProb(0, 1, 0.4).ok());
}

TEST(DeltaLogTest, StagedInsertionsAreDeletableAndUpdatable) {
  const UncertainGraph base = testing::ChainGraph(0.3, 0.6);
  DeltaLog log(&base);
  ASSERT_TRUE(log.AddEdge(2, 0, 0.25).ok());
  ASSERT_TRUE(log.SetProb(2, 0, 0.75).ok());
  const auto added = log.LiveAddedEdges();
  ASSERT_EQ(added.size(), 1u);
  EXPECT_EQ(added[0].prob, 0.75);
  ASSERT_TRUE(log.DeleteEdge(2, 0).ok());
  EXPECT_TRUE(log.LiveAddedEdges().empty());
  EXPECT_EQ(log.live_edge_count(), base.num_edges());
}

TEST(DeltaLogTest, ParallelEdgesResolveLowestIdFirst) {
  UncertainGraphBuilder b(2);
  testing::CheckOk(b.AddEdge(0, 1, 0.1));  // edge id 0
  testing::CheckOk(b.AddEdge(0, 1, 0.2));  // edge id 1 (parallel)
  const UncertainGraph base = b.Build().MoveValue();
  DeltaLog log(&base);
  ASSERT_TRUE(log.SetProb(0, 1, 0.9).ok());
  EXPECT_EQ(log.records().back().edge, 0u) << "lowest id wins";
  ASSERT_TRUE(log.DeleteEdge(0, 1).ok());
  EXPECT_EQ(log.records().back().edge, 0u)
      << "delete hits the updated edge, not the untouched parallel one";
  // Now only edge 1 is live; the next delete resolves to it.
  ASSERT_TRUE(log.DeleteEdge(0, 1).ok());
  EXPECT_EQ(log.records().back().edge, 1u);
  EXPECT_EQ(log.live_edge_count(), 0u);
}

TEST(DeltaLogTest, ViewsExposeDeletionsAndOverrides) {
  const UncertainGraph base = testing::PaperExampleGraph(0.2);
  DeltaLog log(&base);
  ASSERT_TRUE(log.DeleteEdge(0, 2).ok());  // edge id 1
  ASSERT_TRUE(log.SetProb(1, 3, 0.5).ok());  // edge id 2
  EXPECT_TRUE(log.IsBaseEdgeDeleted(1));
  EXPECT_FALSE(log.IsBaseEdgeDeleted(0));
  ASSERT_NE(log.BaseProbOverride(2), nullptr);
  EXPECT_EQ(*log.BaseProbOverride(2), 0.5);
  EXPECT_EQ(log.BaseProbOverride(0), nullptr);
  EXPECT_EQ(log.DeletedBaseEdges(), (std::vector<EdgeId>{1}));
}

}  // namespace
}  // namespace vulnds::dyn
