// DynamicGraph commit correctness: the incremental CSR materialization must
// be indistinguishable — arrays and detection results — from rebuilding the
// graph from scratch with the deltas applied to the edge list.

#include "dyn/dynamic_graph.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "graph/builder.h"
#include "testing/test_graphs.h"
#include "vulnds/detector.h"

namespace vulnds::dyn {
namespace {

std::shared_ptr<const UncertainGraph> Shared(UncertainGraph g) {
  return std::make_shared<const UncertainGraph>(std::move(g));
}

// Reference semantics: the edge list after replaying the log from scratch.
std::vector<UncertainEdge> ReplayEdgeList(const UncertainGraph& base,
                                          const DeltaLog& log) {
  std::vector<UncertainEdge> edges(base.edges().begin(), base.edges().end());
  for (const DeltaRecord& r : log.records()) {
    switch (r.op) {
      case DeltaOp::kAddEdge:
        edges.push_back({r.src, r.dst, r.prob});
        break;
      case DeltaOp::kDeleteEdge:
      case DeltaOp::kSetProb:
        // Lowest-id live match; deleted entries are already erased, so the
        // first positional match is the lowest surviving id.
        for (std::size_t i = 0; i < edges.size(); ++i) {
          if (edges[i].src == r.src && edges[i].dst == r.dst) {
            if (r.op == DeltaOp::kSetProb) {
              edges[i].prob = r.prob;
            } else {
              edges.erase(edges.begin() + i);
            }
            break;
          }
        }
        break;
    }
  }
  return edges;
}

UncertainGraph RebuildFromScratch(const UncertainGraph& base,
                                  const std::vector<UncertainEdge>& edges) {
  UncertainGraphBuilder b(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    EXPECT_TRUE(b.SetSelfRisk(v, base.self_risk(v)).ok());
  }
  for (const UncertainEdge& e : edges) {
    EXPECT_TRUE(b.AddEdge(e.src, e.dst, e.prob).ok());
  }
  return b.Build().MoveValue();
}

// Structural equality down to edge ids and array layout.
void ExpectGraphsIdentical(const UncertainGraph& a, const UncertainGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.self_risk(v), b.self_risk(v)) << "self risk of " << v;
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v)) << "out degree of " << v;
    ASSERT_EQ(a.InDegree(v), b.InDegree(v)) << "in degree of " << v;
    const auto ao = a.OutArcs(v), bo = b.OutArcs(v);
    for (std::size_t i = 0; i < ao.size(); ++i) {
      EXPECT_EQ(ao[i].neighbor, bo[i].neighbor) << "out arc " << i << " of " << v;
      EXPECT_EQ(ao[i].prob, bo[i].prob) << "out arc " << i << " of " << v;
      EXPECT_EQ(ao[i].edge, bo[i].edge) << "out arc " << i << " of " << v;
    }
    const auto ai = a.InArcs(v), bi = b.InArcs(v);
    for (std::size_t i = 0; i < ai.size(); ++i) {
      EXPECT_EQ(ai[i].neighbor, bi[i].neighbor) << "in arc " << i << " of " << v;
      EXPECT_EQ(ai[i].prob, bi[i].prob) << "in arc " << i << " of " << v;
      EXPECT_EQ(ai[i].edge, bi[i].edge) << "in arc " << i << " of " << v;
    }
  }
  const auto ae = a.edges(), be = b.edges();
  for (std::size_t i = 0; i < ae.size(); ++i) {
    EXPECT_EQ(ae[i].src, be[i].src) << "edge " << i;
    EXPECT_EQ(ae[i].dst, be[i].dst) << "edge " << i;
    EXPECT_EQ(ae[i].prob, be[i].prob) << "edge " << i;
  }
}

TEST(DynamicGraphTest, EmptyCommitReproducesBase) {
  DynamicGraph dg(Shared(testing::PaperExampleGraph(0.2)));
  const CommitSnapshot snap = dg.Commit();
  ExpectGraphsIdentical(snap.graph, dg.base());
  EXPECT_EQ(snap.ops, 0u);
  EXPECT_TRUE(snap.touched.empty());
  EXPECT_EQ(snap.runs_rebuilt, 0u);
}

TEST(DynamicGraphTest, SingleInsertTouchesOnlyEndpoints) {
  DynamicGraph dg(Shared(testing::PaperExampleGraph(0.2)));
  ASSERT_TRUE(dg.AddEdge(4, 0, 0.5).ok());  // E -> A, a fresh arc
  const CommitSnapshot snap = dg.Commit();
  const UncertainGraph rebuilt =
      RebuildFromScratch(dg.base(), ReplayEdgeList(dg.base(), dg.log()));
  ExpectGraphsIdentical(snap.graph, rebuilt);
  EXPECT_EQ(snap.touched, (std::vector<NodeId>{0, 4}));
  // 5 nodes x 2 directions; only E's out-run and A's in-run rebuilt.
  EXPECT_EQ(snap.runs_rebuilt, 2u);
  EXPECT_EQ(snap.runs_copied, 8u);
}

TEST(DynamicGraphTest, DeleteShiftsEdgeIdsConsistently) {
  DynamicGraph dg(Shared(testing::PaperExampleGraph(0.2)));
  ASSERT_TRUE(dg.DeleteEdge(0, 1).ok());  // edge id 0: every id shifts
  const CommitSnapshot snap = dg.Commit();
  const UncertainGraph rebuilt =
      RebuildFromScratch(dg.base(), ReplayEdgeList(dg.base(), dg.log()));
  ExpectGraphsIdentical(snap.graph, rebuilt);
  EXPECT_EQ(snap.graph.num_edges(), dg.base().num_edges() - 1);
}

TEST(DynamicGraphTest, SetProbPatchesBothDirections) {
  DynamicGraph dg(Shared(testing::PaperExampleGraph(0.2)));
  ASSERT_TRUE(dg.SetProb(1, 3, 0.75).ok());  // B -> D
  const CommitSnapshot snap = dg.Commit();
  const UncertainGraph rebuilt =
      RebuildFromScratch(dg.base(), ReplayEdgeList(dg.base(), dg.log()));
  ExpectGraphsIdentical(snap.graph, rebuilt);
  bool found_out = false, found_in = false;
  for (const Arc& arc : snap.graph.OutArcs(1)) {
    if (arc.neighbor == 3) {
      EXPECT_EQ(arc.prob, 0.75);
      found_out = true;
    }
  }
  for (const Arc& arc : snap.graph.InArcs(3)) {
    if (arc.neighbor == 1) {
      EXPECT_EQ(arc.prob, 0.75);
      found_in = true;
    }
  }
  EXPECT_TRUE(found_out);
  EXPECT_TRUE(found_in);
}

// The acceptance property: over random delta sequences, a committed version
// is bit-identical — graph arrays and detection results — to a graph
// rebuilt from scratch with the deltas applied. Versions stack via Rebase,
// so later rounds exercise commits on top of FromParts graphs.
TEST(DynamicGraphTest, RandomDeltaSequencesCommitBitIdentical) {
  for (const uint64_t trial_seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(trial_seed * 1000 + 17);
    DynamicGraph dg(Shared(testing::RandomSmallGraph(24, 0.12, trial_seed)));
    for (int round = 0; round < 4; ++round) {
      const UncertainGraph& base = dg.base();
      const std::size_t ops = 1 + rng.NextBounded(12);
      for (std::size_t i = 0; i < ops; ++i) {
        const NodeId src = static_cast<NodeId>(rng.NextBounded(24));
        const NodeId dst = static_cast<NodeId>(rng.NextBounded(24));
        switch (rng.NextBounded(3)) {
          case 0:
            dg.AddEdge(src, dst, rng.NextDouble());  // may reject self-loops
            break;
          case 1:
            dg.DeleteEdge(src, dst);  // may reject missing edges
            break;
          default:
            dg.SetProb(src, dst, rng.NextDouble());
        }
      }
      const CommitSnapshot snap = dg.Commit();
      const UncertainGraph rebuilt =
          RebuildFromScratch(base, ReplayEdgeList(base, dg.log()));
      ExpectGraphsIdentical(snap.graph, rebuilt);

      // Detection must not be able to tell the two graphs apart.
      DetectorOptions options;
      options.method = Method::kBsrbk;
      options.k = 3;
      options.seed = trial_seed;
      const Result<DetectionResult> a = DetectTopK(snap.graph, options);
      const Result<DetectionResult> b = DetectTopK(rebuilt, options);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->topk, b->topk) << "trial " << trial_seed << " round " << round;
      EXPECT_EQ(a->scores, b->scores);

      dg.Rebase(Shared(snap.graph));
    }
  }
}

TEST(DynamicGraphTest, RebaseClearsLogAndStacksVersions) {
  DynamicGraph dg(Shared(testing::ChainGraph(0.3, 0.6)));
  ASSERT_TRUE(dg.AddEdge(2, 0, 0.4).ok());
  EXPECT_EQ(dg.pending_ops(), 1u);
  CommitSnapshot snap = dg.Commit();
  dg.Rebase(Shared(std::move(snap.graph)));
  EXPECT_EQ(dg.pending_ops(), 0u);
  EXPECT_EQ(dg.base().num_edges(), 3u);
  // The next op validates against the committed graph: 2 -> 0 now exists.
  ASSERT_TRUE(dg.SetProb(2, 0, 0.9).ok());
  ASSERT_TRUE(dg.DeleteEdge(2, 0).ok());
  EXPECT_EQ(dg.live_edge_count(), 2u);
}

}  // namespace
}  // namespace vulnds::dyn
