// DeltaJournal framing/recovery and UpdateManager crash recovery: every
// committed name@vN must survive a kill -9, a torn tail must truncate to
// the longest valid record prefix, and replay must rebuild versions
// bit-identically — including through a scripted serve session.

#include "dyn/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dyn/update_manager.h"
#include "graph/graph_io.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "testing/test_graphs.h"

namespace vulnds::dyn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(DeltaJournalTest, AppendReopenRecovers) {
  const std::string path = TempPath("journal_basic.log");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<DeltaJournal>> journal = DeltaJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ((*journal)->records(), 0u);
    ASSERT_TRUE((*journal)->Append("open g 1 base.graph").ok());
    ASSERT_TRUE((*journal)->Append("add g 0 1 0.5").ok());
    ASSERT_TRUE((*journal)->Append("commit g 1").ok());
    ASSERT_TRUE((*journal)->Sync().ok());
    EXPECT_EQ((*journal)->records(), 3u);
    EXPECT_GT((*journal)->bytes(), 0u);
  }
  Result<std::unique_ptr<DeltaJournal>> reopened = DeltaJournal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->dropped_tail_bytes(), 0u);
  const std::vector<std::string>& records = (*reopened)->recovered();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "open g 1 base.graph");
  EXPECT_EQ(records[1], "add g 0 1 0.5");
  EXPECT_EQ(records[2], "commit g 1");
}

TEST(DeltaJournalTest, OversizeRecordRejected) {
  const std::string path = TempPath("journal_oversize.log");
  std::remove(path.c_str());
  Result<std::unique_ptr<DeltaJournal>> journal = DeltaJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  const std::string huge(DeltaJournal::kMaxRecordBytes + 1, 'x');
  EXPECT_EQ((*journal)->Append(huge).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*journal)->records(), 0u);
}

TEST(DeltaJournalTest, CorruptMiddleRecordTruncatesFromThere) {
  const std::string path = TempPath("journal_corrupt.log");
  std::remove(path.c_str());
  std::size_t first_frame = 0;
  {
    Result<std::unique_ptr<DeltaJournal>> journal = DeltaJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append("one").ok());
    first_frame = (*journal)->bytes();
    ASSERT_TRUE((*journal)->Append("two").ok());
    ASSERT_TRUE((*journal)->Append("three").ok());
  }
  std::string bytes = FileBytes(path);
  bytes[first_frame + 8] ^= 0x40;  // flip a payload bit of record two
  WriteBytes(path, bytes);
  Result<std::unique_ptr<DeltaJournal>> reopened = DeltaJournal::Open(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->recovered().size(), 1u);
  EXPECT_EQ((*reopened)->recovered()[0], "one");
  EXPECT_EQ((*reopened)->dropped_tail_bytes(), bytes.size() - first_frame);
  EXPECT_EQ((*reopened)->bytes(), first_frame);
}

// Property: truncating the file at EVERY byte boundary recovers exactly the
// records that fit completely before the cut — the longest valid prefix —
// and the journal stays appendable afterwards.
TEST(DeltaJournalTest, TruncationAtEveryByteRecoversLongestValidPrefix) {
  const std::string path = TempPath("journal_prop.log");
  std::remove(path.c_str());
  const std::vector<std::string> payloads = {
      "open g 1 base.graph", "add g 0 1 0.25", "del g 2 3",
      "set g 4 5 0.125", "commit g 1"};
  std::vector<std::size_t> boundaries = {0};
  {
    Result<std::unique_ptr<DeltaJournal>> journal = DeltaJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (const std::string& payload : payloads) {
      ASSERT_TRUE((*journal)->Append(payload).ok());
      boundaries.push_back((*journal)->bytes());
    }
  }
  const std::string bytes = FileBytes(path);
  ASSERT_EQ(bytes.size(), boundaries.back());
  const std::string cut_path = TempPath("journal_prop_cut.log");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::remove(cut_path.c_str());
    WriteBytes(cut_path, bytes.substr(0, cut));
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(cut_path);
    ASSERT_TRUE(journal.ok()) << "cut at " << cut;
    std::size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= cut) {
      ++expect_records;
    }
    ASSERT_EQ((*journal)->recovered().size(), expect_records)
        << "cut at " << cut;
    for (std::size_t i = 0; i < expect_records; ++i) {
      ASSERT_EQ((*journal)->recovered()[i], payloads[i]) << "cut at " << cut;
    }
    ASSERT_EQ((*journal)->dropped_tail_bytes(),
              cut - boundaries[expect_records])
        << "cut at " << cut;
    // The truncated journal must accept appends again.
    ASSERT_TRUE((*journal)->Append("post-crash").ok()) << "cut at " << cut;
    ASSERT_EQ((*journal)->records(), expect_records + 1);
  }
}

// --- Crash recovery through UpdateManager ------------------------------

struct RecoveredServer {
  std::unique_ptr<serve::GraphCatalog> catalog;
  std::unique_ptr<DeltaJournal> journal;
  std::unique_ptr<UpdateManager> updates;
  JournalReplayStats replay;
};

// Opens `journal_path` and replays it into a fresh catalog, the way the
// serve CLI does at startup.
RecoveredServer Recover(const std::string& journal_path) {
  RecoveredServer server;
  server.catalog = std::make_unique<serve::GraphCatalog>();
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(journal_path);
  EXPECT_TRUE(journal.ok());
  server.journal = journal.MoveValue();
  server.updates = std::make_unique<UpdateManager>(server.catalog.get(),
                                                   server.journal.get());
  Result<JournalReplayStats> replayed = server.updates->ReplayJournal();
  EXPECT_TRUE(replayed.ok());
  server.replay = *replayed;
  return server;
}

TEST(JournalRecoveryTest, CommittedVersionsSurviveRestartBitIdentically) {
  const std::string graph_path = TempPath("journal_rec_base.snap");
  ASSERT_TRUE(WriteGraphFile(testing::RandomSmallGraph(30, 0.2, 9),
                             graph_path, GraphFileFormat::kBinary)
                  .ok());
  const std::string journal_path = TempPath("journal_rec.log");
  std::remove(journal_path.c_str());

  std::string v1_snapshot;  // serialized g@v1 from the first process
  {
    serve::GraphCatalog catalog;
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    UpdateManager updates(&catalog, journal->get());
    ASSERT_TRUE(catalog.Load("g", graph_path).ok());
    ASSERT_TRUE(updates.AddEdge("g", 0, 7, 0.5).ok());
    ASSERT_TRUE(updates.AddEdge("g", 1, 8, 0.25).ok());
    ASSERT_TRUE(updates.Commit("g").ok());
    ASSERT_TRUE(updates.SetProb("g", 0, 7, 0.75).ok());
    ASSERT_TRUE(updates.Commit("g").ok());
    ASSERT_TRUE(updates.AddEdge("g", 2, 9, 0.125).ok());  // staged, no commit
    const auto v1 = catalog.Get("g@v1");
    ASSERT_NE(v1, nullptr);
    const std::string out = TempPath("journal_rec_v1_before.snap");
    ASSERT_TRUE(
        WriteGraphFile(v1->graph, out, GraphFileFormat::kBinary).ok());
    v1_snapshot = FileBytes(out);
    // No clean shutdown: the catalog/journal simply go away (the journal's
    // commit records were fsync'd, which is all kill -9 leaves behind).
  }

  RecoveredServer server = Recover(journal_path);
  EXPECT_EQ(server.replay.commits, 2u);
  EXPECT_EQ(server.replay.ops, 4u);  // add, add, set, and the staged tail add
  EXPECT_EQ(server.replay.skipped, 0u);

  // Both committed versions are back under their exact names.
  EXPECT_NE(server.catalog->Get("g@v1"), nullptr);
  EXPECT_NE(server.catalog->Get("g@v2"), nullptr);
  Result<std::vector<serve::VersionInfo>> versions =
      server.updates->Versions("g");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 3u);
  EXPECT_EQ((*versions)[1].catalog_name, "g@v1");
  EXPECT_EQ((*versions)[2].catalog_name, "g@v2");

  // v1 is bit-identical to the pre-crash snapshot.
  const auto v1 = server.catalog->Get("g@v1");
  const std::string out = TempPath("journal_rec_v1_after.snap");
  ASSERT_TRUE(WriteGraphFile(v1->graph, out, GraphFileFormat::kBinary).ok());
  EXPECT_EQ(FileBytes(out), v1_snapshot);

  // The staged-but-uncommitted tail op was re-staged: committing now
  // materializes it as v3.
  Result<serve::CommitInfo> commit = server.updates->Commit("g");
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->versioned_name, "g@v3");
  EXPECT_EQ(commit->ops, 1u);
}

// Kill mid-commit: the journal ends inside the commit record. Replay must
// restore every fully committed version, drop the torn record, and leave
// the tail ops staged — verified through a scripted serve session, the
// same surface an operator sees.
TEST(JournalRecoveryTest, KillMidCommitKeepsCommittedPrefixThroughServe) {
  const std::string graph_path = TempPath("journal_kill_base.snap");
  ASSERT_TRUE(WriteGraphFile(testing::RandomSmallGraph(25, 0.2, 13),
                             graph_path, GraphFileFormat::kBinary)
                  .ok());
  const std::string journal_path = TempPath("journal_kill.log");
  std::remove(journal_path.c_str());

  std::size_t bytes_before_second_commit = 0;
  {
    serve::GraphCatalog catalog;
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    UpdateManager updates(&catalog, journal->get());
    ASSERT_TRUE(catalog.Load("g", graph_path).ok());
    ASSERT_TRUE(updates.AddEdge("g", 0, 5, 0.5).ok());
    ASSERT_TRUE(updates.Commit("g").ok());
    ASSERT_TRUE(updates.AddEdge("g", 1, 6, 0.25).ok());
    bytes_before_second_commit = (*journal)->bytes();
    ASSERT_TRUE(updates.Commit("g").ok());
  }
  // Simulate the kill landing mid-append of v2's commit record: keep a
  // few bytes of its frame but not all of it.
  const std::string bytes = FileBytes(journal_path);
  ASSERT_GT(bytes.size(), bytes_before_second_commit + 3);
  WriteBytes(journal_path, bytes.substr(0, bytes_before_second_commit + 3));

  RecoveredServer server = Recover(journal_path);
  EXPECT_EQ(server.replay.commits, 1u);
  EXPECT_GT(server.replay.dropped_tail_bytes, 0u);

  serve::QueryEngine engine(server.catalog.get());
  std::istringstream in("versions g\nstats\nquit\n");
  std::ostringstream out;
  serve::RunServeLoop(in, out, engine, server.updates.get());
  const std::string output = out.str();
  EXPECT_NE(output.find("ok versions g count=2"), std::string::npos)
      << output;
  EXPECT_NE(output.find("g@v1"), std::string::npos) << output;
  EXPECT_EQ(output.find("g@v2"), std::string::npos)
      << "torn commit must not resurrect v2: " << output;
  // The stats verb reports the journal's size (satellite of the storage
  // vocabulary) — nonzero because the valid prefix survived.
  EXPECT_NE(output.find("journal_bytes=" +
                        std::to_string(bytes_before_second_commit)),
            std::string::npos)
      << output;

  // The re-staged tail op (add g 1 6) commits as v2 after recovery.
  Result<serve::CommitInfo> commit = server.updates->Commit("g");
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->versioned_name, "g@v2");
}

TEST(JournalRecoveryTest, MemorySourcedLineageIsSkippedNotFatal) {
  const std::string journal_path = TempPath("journal_mem.log");
  std::remove(journal_path.c_str());
  {
    serve::GraphCatalog catalog;
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    UpdateManager updates(&catalog, journal->get());
    ASSERT_TRUE(catalog.Put("m", testing::PaperExampleGraph(0.2)).ok());
    ASSERT_TRUE(updates.AddEdge("m", 0, 4, 0.5).ok());
    ASSERT_TRUE(updates.Commit("m").ok());
  }
  // "m" was Put() from memory: there is no source to reload it from, so
  // replay must abandon the lineage without failing startup.
  RecoveredServer server = Recover(journal_path);
  EXPECT_EQ(server.replay.commits, 0u);
  EXPECT_GE(server.replay.skipped, 1u);
  EXPECT_EQ(server.replay.failed_names, 1u);
  EXPECT_EQ(server.catalog->Get("m@v1"), nullptr);
}

}  // namespace
}  // namespace vulnds::dyn
