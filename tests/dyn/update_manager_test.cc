// UpdateManager: version registration in the catalog, exact cache/context
// invalidation across commits, and lifecycle edge cases (reloads, version
// immutability, empty commits).

#include "dyn/update_manager.h"

#include <gtest/gtest.h>

#include "serve/query_engine.h"
#include "testing/test_graphs.h"
#include "vulnds/detector.h"

namespace vulnds::dyn {
namespace {

using serve::CatalogEntry;
using serve::CommitInfo;
using serve::GraphCatalog;
using serve::QueryEngine;
using serve::UpdateAck;
using serve::VersionInfo;

TEST(UpdateManagerTest, CommitRegistersMonotonicVersions) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.2)).ok());
  UpdateManager manager(&catalog);

  Result<UpdateAck> ack = manager.AddEdge("g", 4, 0, 0.5);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->pending, 1u);
  EXPECT_EQ(ack->live_edges, 7u);
  Result<CommitInfo> v1 = manager.Commit("g");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->versioned_name, "g@v1");
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->edges, 7u);
  EXPECT_EQ(v1->ops, 1u);

  // The committed version is a real catalog entry; the base is untouched.
  const auto v1_entry = catalog.Get("g@v1");
  ASSERT_NE(v1_entry, nullptr);
  EXPECT_EQ(v1_entry->graph.num_edges(), 7u);
  EXPECT_EQ(catalog.Get("g")->graph.num_edges(), 6u);

  // The next batch builds on v1, not on the base.
  ASSERT_TRUE(manager.DeleteEdge("g", 4, 0).ok());
  Result<CommitInfo> v2 = manager.Commit("g");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->versioned_name, "g@v2");
  EXPECT_EQ(v2->edges, 6u);

  Result<std::vector<VersionInfo>> versions = manager.Versions("g");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 3u);
  EXPECT_EQ((*versions)[0].version, 0u);
  EXPECT_EQ((*versions)[0].catalog_name, "g");
  EXPECT_EQ((*versions)[1].catalog_name, "g@v1");
  EXPECT_EQ((*versions)[2].catalog_name, "g@v2");
}

TEST(UpdateManagerTest, StagingValidatesAndReportsErrors) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::ChainGraph(0.3, 0.6)).ok());
  UpdateManager manager(&catalog);

  EXPECT_EQ(manager.AddEdge("missing", 0, 1, 0.5).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager.AddEdge("g", 0, 0, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.DeleteEdge("g", 2, 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager.SetProb("g", 0, 1, 7.0).status().code(),
            StatusCode::kInvalidArgument);
  // Versions are immutable.
  EXPECT_EQ(manager.AddEdge("g@v1", 0, 1, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  // Nothing staged: commit refuses.
  EXPECT_EQ(manager.Commit("g").status().code(), StatusCode::kInvalidArgument);

  const UpdateManagerStats stats = manager.stats();
  EXPECT_EQ(stats.staged_ops, 0u);
  EXPECT_EQ(stats.rejected_ops, 5u);
  EXPECT_EQ(stats.commits, 0u);
}

TEST(UpdateManagerTest, UntouchedVersionsKeepHittingTheResultCache) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  UpdateManager manager(&catalog);

  DetectorOptions options;
  options.method = Method::kBsrbk;
  options.k = 3;

  // Prime the cache on the base version.
  Result<serve::DetectResponse> cold = engine.Detect("g", options);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->from_cache);

  ASSERT_TRUE(manager.SetProb("g", 0, 1, 0.99).status().ok() ||
              manager.AddEdge("g", 0, 1, 0.99).status().ok());
  ASSERT_TRUE(manager.Commit("g").ok());

  // The base version was not touched by the commit: still a cache hit, and
  // bit-identical to the pre-commit answer.
  Result<serve::DetectResponse> warm = engine.Detect("g", options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->result.topk, cold->result.topk);
  EXPECT_EQ(warm->result.scores, cold->result.scores);

  // The new version answers from its own graph, never the stale cache line.
  Result<serve::DetectResponse> fresh = engine.Detect("g@v1", options);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->from_cache);
  Result<serve::DetectResponse> repeat = engine.Detect("g@v1", options);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->from_cache);
  EXPECT_EQ(repeat->result.topk, fresh->result.topk);
}

TEST(UpdateManagerTest, CommitCarriesSampleOrdersAndDropsBounds) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  UpdateManager manager(&catalog);

  DetectorOptions options;
  options.method = Method::kBsrbk;
  options.k = 3;
  ASSERT_TRUE(engine.Detect("g", options).ok());  // warms the base context
  {
    const auto entry = catalog.Get("g");
    std::lock_guard<std::mutex> lock(entry->context_mu);
    ASSERT_FALSE(entry->context.sample_orders.empty());
    ASSERT_FALSE(entry->context.lower_bounds.empty());
  }

  ASSERT_TRUE(manager.SetProb("g", 0, 1, 0.5).status().ok() ||
              manager.AddEdge("g", 0, 1, 0.5).status().ok());
  Result<CommitInfo> commit = manager.Commit("g");
  ASSERT_TRUE(commit.ok());
  EXPECT_GE(commit->carried, 1u) << "sample orders are graph-independent";
  EXPECT_GE(commit->dropped, 2u) << "bounds + reduction are graph-dependent";

  const auto entry = catalog.Get("g@v1");
  ASSERT_NE(entry, nullptr);
  std::lock_guard<std::mutex> lock(entry->context_mu);
  EXPECT_EQ(entry->context.sample_orders.size(), commit->carried);
  EXPECT_TRUE(entry->context.lower_bounds.empty());
  EXPECT_TRUE(entry->context.upper_bounds.empty());
  EXPECT_TRUE(entry->context.reductions.empty());
}

TEST(UpdateManagerTest, ReloadOfBaseDiscardsStaleStagedOps) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.2)).ok());
  UpdateManager manager(&catalog);
  ASSERT_TRUE(manager.AddEdge("g", 4, 0, 0.5).ok());

  // Operator replaces the base snapshot: staged ops target a dead lineage.
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.4)).ok());
  const Status stale = manager.AddEdge("g", 4, 0, 0.5).status();
  EXPECT_EQ(stale.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stale.message().find("discarded"), std::string::npos);

  // The manager restarted from the reloaded snapshot: staging works again
  // and the version history reflects the new base.
  Result<UpdateAck> ack = manager.AddEdge("g", 4, 0, 0.5);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->pending, 1u);
  Result<std::vector<VersionInfo>> versions = manager.Versions("g");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 1u);
}

TEST(UpdateManagerTest, VersionsIsAPureReadAcrossReloads) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.2)).ok());
  UpdateManager manager(&catalog);
  ASSERT_TRUE(manager.AddEdge("g", 4, 0, 0.5).ok());
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.4)).ok());

  // The read must neither fail nor consume the reload notice...
  Result<std::vector<VersionInfo>> versions = manager.Versions("g");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 1u);
  // ...so the next mutation still tells the writer its ops were dropped.
  const Status stale = manager.SetProb("g", 4, 0, 0.9).status();
  EXPECT_EQ(stale.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stale.message().find("discarded"), std::string::npos);
}

TEST(UpdateManagerTest, CommitRefusesToClobberAnExternallyLoadedVersionName) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.2)).ok());
  // Operator squatted the name the next commit would mint.
  ASSERT_TRUE(catalog.Put("g@v1", testing::ChainGraph(0.3, 0.6)).ok());
  UpdateManager manager(&catalog);
  ASSERT_TRUE(manager.AddEdge("g", 4, 0, 0.5).ok());

  const Status st = manager.Commit("g").status();
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Get("g@v1")->graph.num_nodes(), 3u)
      << "the externally loaded graph must be untouched";
  // Staged ops survive the refusal; clearing the squatter unblocks.
  ASSERT_TRUE(catalog.Evict("g@v1"));
  Result<CommitInfo> commit = manager.Commit("g");
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->versioned_name, "g@v1");
  EXPECT_EQ(commit->ops, 1u);
}

TEST(UpdateManagerTest, VersionsIsReadableThroughAVersionName) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.2)).ok());
  UpdateManager manager(&catalog);
  ASSERT_TRUE(manager.AddEdge("g", 4, 0, 0.5).ok());
  ASSERT_TRUE(manager.Commit("g").ok());

  // `versions g@v1` reads g's lineage instead of being rejected as a
  // mutation of an immutable version.
  Result<std::vector<VersionInfo>> versions = manager.Versions("g@v1");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 2u);
  EXPECT_EQ((*versions)[1].catalog_name, "g@v1");
}

TEST(UpdateManagerTest, IdleManagerDoesNotPinEvictedSnapshots) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::ChainGraph(0.3, 0.6)).ok());
  UpdateManager manager(&catalog);
  ASSERT_TRUE(manager.AddEdge("g", 2, 0, 0.4).ok());
  ASSERT_TRUE(manager.Commit("g").ok());

  // With the log clean the manager holds no graph references, so evicting
  // the lineage tip really frees it — and the next staged op reports the
  // lineage as gone instead of resurrecting a hidden pinned copy.
  ASSERT_TRUE(catalog.Evict("g@v1"));
  EXPECT_EQ(catalog.Get("g@v1"), nullptr);
  const Status st = manager.SetProb("g", 2, 0, 0.9).status();
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("evicted"), std::string::npos) << st.message();
}

TEST(UpdateManagerTest, CommittedVersionSurvivesBaseEviction) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::ChainGraph(0.3, 0.6)).ok());
  UpdateManager manager(&catalog);
  ASSERT_TRUE(manager.AddEdge("g", 2, 0, 0.4).ok());
  ASSERT_TRUE(manager.Commit("g").ok());

  // Evicting the base does not invalidate the committed version, and the
  // overlay (anchored on v1, which it keeps alive) still accepts updates.
  ASSERT_TRUE(catalog.Evict("g"));
  EXPECT_NE(catalog.Get("g@v1"), nullptr);
  ASSERT_TRUE(manager.SetProb("g", 2, 0, 0.9).ok());
  Result<CommitInfo> v2 = manager.Commit("g");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->versioned_name, "g@v2");
}

}  // namespace
}  // namespace vulnds::dyn
