#include "serve/graph_catalog.h"

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

std::string WriteTempGraph(const UncertainGraph& g, const std::string& name,
                           GraphFileFormat format) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteGraphFile(g, path, format).ok());
  return path;
}

TEST(GraphCatalogTest, LoadTextAndBinary) {
  GraphCatalog catalog;
  const UncertainGraph g = testing::PaperExampleGraph(0.2);
  const std::string text = WriteTempGraph(g, "cat_a.graph", GraphFileFormat::kText);
  const std::string bin = WriteTempGraph(g, "cat_b.snap", GraphFileFormat::kBinary);
  ASSERT_TRUE(catalog.Load("a", text).ok());
  ASSERT_TRUE(catalog.Load("b", bin).ok());
  EXPECT_EQ(catalog.size(), 2u);
  const auto a = catalog.Get("a");
  const auto b = catalog.Get("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->graph.num_nodes(), b->graph.num_nodes());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
}

TEST(GraphCatalogTest, LoadMissingFileFails) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Load("x", "/nonexistent/g.graph").code(),
            StatusCode::kIOError);
  EXPECT_EQ(catalog.size(), 0u);
}

TEST(GraphCatalogTest, GetUnknownReturnsNull) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Get("nope"), nullptr);
  EXPECT_EQ(catalog.stats().misses, 1u);
}

TEST(GraphCatalogTest, EvictAndReload) {
  GraphCatalog catalog;
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const std::string path = WriteTempGraph(g, "cat_c.snap", GraphFileFormat::kBinary);
  ASSERT_TRUE(catalog.Load("c", path).ok());
  EXPECT_TRUE(catalog.Evict("c"));
  EXPECT_FALSE(catalog.Evict("c"));
  EXPECT_EQ(catalog.Get("c"), nullptr);
  ASSERT_TRUE(catalog.Load("c", path).ok());
  EXPECT_NE(catalog.Get("c"), nullptr);
  EXPECT_EQ(catalog.stats().evictions, 1u);
}

TEST(GraphCatalogTest, EvictedEntryStaysAliveForHolders) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("m", testing::PaperExampleGraph(0.2)).ok());
  const auto held = catalog.Get("m");
  ASSERT_NE(held, nullptr);
  EXPECT_TRUE(catalog.Evict("m"));
  // The in-flight reference still works after eviction.
  EXPECT_EQ(held->graph.num_nodes(), 5u);
}

TEST(GraphCatalogTest, ReloadReplacesEntryAndDropsContext) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("r", testing::ChainGraph(0.3, 0.6)).ok());
  {
    const auto entry = catalog.Get("r");
    entry->context.lower_bounds[2] = {0.1, 0.2, 0.3};
  }
  ASSERT_TRUE(catalog.Put("r", testing::PaperExampleGraph(0.2)).ok());
  const auto entry = catalog.Get("r");
  EXPECT_EQ(entry->graph.num_nodes(), 5u);
  // A reload must not leak derived state from the old graph.
  EXPECT_TRUE(entry->context.lower_bounds.empty());
  EXPECT_EQ(catalog.stats().reloads, 1u);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(GraphCatalogTest, CapacityEvictsLeastRecentlyUsed) {
  GraphCatalog catalog(/*capacity=*/2);
  ASSERT_TRUE(catalog.Put("a", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_TRUE(catalog.Put("b", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_NE(catalog.Get("a"), nullptr);  // "b" becomes LRU
  ASSERT_TRUE(catalog.Put("c", testing::ChainGraph(0.3, 0.6)).ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Get("b"), nullptr);
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_NE(catalog.Get("c"), nullptr);
}

TEST(GraphCatalogTest, NamesMostRecentFirst) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("a", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_TRUE(catalog.Put("b", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_NE(catalog.Get("a"), nullptr);
  const std::vector<std::string> names = catalog.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(GraphCatalogTest, EmptyNameRejected) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Put("", testing::ChainGraph(0.3, 0.6)).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vulnds::serve
