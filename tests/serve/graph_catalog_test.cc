#include "serve/graph_catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/graph_io.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

std::string WriteTempGraph(const UncertainGraph& g, const std::string& name,
                           GraphFileFormat format) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteGraphFile(g, path, format).ok());
  return path;
}

TEST(GraphCatalogTest, LoadTextAndBinary) {
  GraphCatalog catalog;
  const UncertainGraph g = testing::PaperExampleGraph(0.2);
  const std::string text = WriteTempGraph(g, "cat_a.graph", GraphFileFormat::kText);
  const std::string bin = WriteTempGraph(g, "cat_b.snap", GraphFileFormat::kBinary);
  ASSERT_TRUE(catalog.Load("a", text).ok());
  ASSERT_TRUE(catalog.Load("b", bin).ok());
  EXPECT_EQ(catalog.size(), 2u);
  const auto a = catalog.Get("a");
  const auto b = catalog.Get("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->graph.num_nodes(), b->graph.num_nodes());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
}

TEST(GraphCatalogTest, LoadMissingFileFails) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Load("x", "/nonexistent/g.graph").code(),
            StatusCode::kIOError);
  EXPECT_EQ(catalog.size(), 0u);
}

TEST(GraphCatalogTest, GetUnknownReturnsNull) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Get("nope"), nullptr);
  EXPECT_EQ(catalog.stats().misses, 1u);
}

TEST(GraphCatalogTest, EvictAndReload) {
  GraphCatalog catalog;
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  const std::string path = WriteTempGraph(g, "cat_c.snap", GraphFileFormat::kBinary);
  ASSERT_TRUE(catalog.Load("c", path).ok());
  EXPECT_TRUE(catalog.Evict("c"));
  EXPECT_FALSE(catalog.Evict("c"));
  EXPECT_EQ(catalog.Get("c"), nullptr);
  ASSERT_TRUE(catalog.Load("c", path).ok());
  EXPECT_NE(catalog.Get("c"), nullptr);
  EXPECT_EQ(catalog.stats().evictions, 1u);
}

TEST(GraphCatalogTest, EvictedEntryStaysAliveForHolders) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("m", testing::PaperExampleGraph(0.2)).ok());
  const auto held = catalog.Get("m");
  ASSERT_NE(held, nullptr);
  EXPECT_TRUE(catalog.Evict("m"));
  // The in-flight reference still works after eviction.
  EXPECT_EQ(held->graph.num_nodes(), 5u);
}

TEST(GraphCatalogTest, ReloadReplacesEntryAndDropsContext) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("r", testing::ChainGraph(0.3, 0.6)).ok());
  {
    const auto entry = catalog.Get("r");
    entry->context.lower_bounds[2] = {0.1, 0.2, 0.3};
  }
  ASSERT_TRUE(catalog.Put("r", testing::PaperExampleGraph(0.2)).ok());
  const auto entry = catalog.Get("r");
  EXPECT_EQ(entry->graph.num_nodes(), 5u);
  // A reload must not leak derived state from the old graph.
  EXPECT_TRUE(entry->context.lower_bounds.empty());
  EXPECT_EQ(catalog.stats().reloads, 1u);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(GraphCatalogTest, CapacityEvictsLeastRecentlyUsed) {
  GraphCatalog catalog(/*capacity=*/2);
  ASSERT_TRUE(catalog.Put("a", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_TRUE(catalog.Put("b", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_NE(catalog.Get("a"), nullptr);  // "b" becomes LRU
  ASSERT_TRUE(catalog.Put("c", testing::ChainGraph(0.3, 0.6)).ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Get("b"), nullptr);
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_NE(catalog.Get("c"), nullptr);
}

TEST(GraphCatalogTest, NamesMostRecentFirst) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("a", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_TRUE(catalog.Put("b", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_NE(catalog.Get("a"), nullptr);
  const std::vector<std::string> names = catalog.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(GraphCatalogTest, EmptyNameRejected) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Put("", testing::ChainGraph(0.3, 0.6)).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Sharding.
// ---------------------------------------------------------------------------

TEST(ShardedCatalogTest, ShardCountRoundsUpToPowerOfTwo) {
  GraphCatalogOptions options;
  options.shards = 5;
  GraphCatalog catalog(options);
  EXPECT_EQ(catalog.shard_count(), 8u);
  GraphCatalogOptions one;
  one.shards = 1;
  EXPECT_EQ(GraphCatalog(one).shard_count(), 1u);
  EXPECT_EQ(GraphCatalog().shard_count(), GraphCatalog::kDefaultShards);
  // A hostile shard count is clamped, not allocated (and must not hang the
  // power-of-two round-up on overflow).
  GraphCatalogOptions huge;
  huge.shards = static_cast<std::size_t>(-1);
  EXPECT_EQ(GraphCatalog(huge).shard_count(), 256u);
}

TEST(ShardedCatalogTest, ShardInfosSumToAggregates) {
  GraphCatalog catalog;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        catalog.Put("g" + std::to_string(i), testing::ChainGraph(0.3, 0.6)).ok());
  }
  catalog.Get("g3");
  catalog.Get("nope");
  std::size_t size = 0, bytes = 0, hits = 0, misses = 0, loads = 0;
  for (const CatalogShardInfo& shard : catalog.ShardInfos()) {
    size += shard.size;
    bytes += shard.bytes;
    hits += shard.stats.hits;
    misses += shard.stats.misses;
    loads += shard.stats.loads;
  }
  EXPECT_EQ(size, catalog.size());
  EXPECT_EQ(bytes, catalog.resident_bytes());
  const CatalogStats total = catalog.stats();
  EXPECT_EQ(hits, total.hits);
  EXPECT_EQ(misses, total.misses);
  EXPECT_EQ(loads, total.loads);
  EXPECT_EQ(total.hits, 1u);
  EXPECT_EQ(total.misses, 1u);
}

TEST(ShardedCatalogTest, CapacityEvictionIsGlobalLruAcrossShards) {
  // Names spread over shards, but eviction order must follow global
  // recency, exactly like the former one-mutex catalog.
  GraphCatalogOptions options;
  options.capacity = 3;
  options.shards = 4;
  GraphCatalog catalog(options);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(catalog.Put(name, testing::ChainGraph(0.3, 0.6)).ok());
  }
  ASSERT_NE(catalog.Get("a"), nullptr);  // recency now b < c < a
  ASSERT_NE(catalog.Get("b"), nullptr);  // recency now c < a < b
  ASSERT_TRUE(catalog.Put("d", testing::ChainGraph(0.3, 0.6)).ok());
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog.Get("c"), nullptr) << "global LRU victim must be c";
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_NE(catalog.Get("b"), nullptr);
  EXPECT_NE(catalog.Get("d"), nullptr);
}

TEST(ShardedCatalogTest, ByteBudgetEvictsUntilWithinBudget) {
  const UncertainGraph small = testing::ChainGraph(0.3, 0.6);
  const std::size_t small_bytes = EstimateGraphBytes(small);
  GraphCatalogOptions options;
  options.byte_budget = 3 * small_bytes + small_bytes / 2;  // fits 3, not 4
  options.shards = 4;
  GraphCatalog catalog(options);
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    ASSERT_TRUE(catalog.Put(name, testing::ChainGraph(0.3, 0.6)).ok());
  }
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_LE(catalog.resident_bytes(), options.byte_budget);
  // The three most recently inserted survive.
  EXPECT_EQ(catalog.Get("a"), nullptr);
  EXPECT_EQ(catalog.Get("b"), nullptr);
  EXPECT_NE(catalog.Get("c"), nullptr);
  EXPECT_NE(catalog.Get("d"), nullptr);
  EXPECT_NE(catalog.Get("e"), nullptr);
  EXPECT_EQ(catalog.stats().evictions, 2u);
}

TEST(ShardedCatalogTest, LoneOversizedGraphStaysResident) {
  const UncertainGraph big = testing::RandomSmallGraph(50, 0.2, 3);
  GraphCatalogOptions options;
  options.byte_budget = EstimateGraphBytes(big) / 2;
  GraphCatalog catalog(options);
  ASSERT_TRUE(catalog.Put("big", testing::RandomSmallGraph(50, 0.2, 3)).ok());
  // A single graph larger than the whole budget must not thrash the
  // catalog empty; the budget bites again as soon as a second entry lands.
  EXPECT_NE(catalog.Get("big"), nullptr);
  ASSERT_TRUE(catalog.Put("small", testing::ChainGraph(0.3, 0.6)).ok());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.Get("big"), nullptr) << "LRU victim is the older graph";
  EXPECT_NE(catalog.Get("small"), nullptr);
}

TEST(ShardedCatalogTest, EvictionAccountingRemovesBytes) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("a", testing::ChainGraph(0.3, 0.6)).ok());
  ASSERT_TRUE(catalog.Put("b", testing::RandomSmallGraph(20, 0.2, 5)).ok());
  const std::size_t both = catalog.resident_bytes();
  ASSERT_TRUE(catalog.Evict("b"));
  EXPECT_EQ(catalog.resident_bytes(),
            both - EstimateGraphBytes(testing::RandomSmallGraph(20, 0.2, 5)));
  ASSERT_TRUE(catalog.Evict("a"));
  EXPECT_EQ(catalog.resident_bytes(), 0u);
  EXPECT_EQ(catalog.size(), 0u);
}

// Reference model: a single global LRU with the same budget rules. The
// sharded catalog must match it operation for operation (single-threaded,
// sharding is pure implementation detail).
class LruModel {
 public:
  LruModel(std::size_t capacity, std::size_t byte_budget)
      : capacity_(capacity), byte_budget_(byte_budget) {}

  void Put(const std::string& name, std::size_t bytes) {
    Remove(name);
    order_.push_front({name, bytes});
    bytes_total_ += bytes;
    Enforce();
  }

  bool Get(const std::string& name) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->first == name) {
        auto entry = *it;
        order_.erase(it);
        order_.push_front(entry);
        return true;
      }
    }
    return false;
  }

  bool Evict(const std::string& name) {
    const std::size_t before = order_.size();
    Remove(name);
    return order_.size() != before;
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    for (const auto& [name, bytes] : order_) names.push_back(name);
    return names;
  }

 private:
  void Remove(const std::string& name) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->first == name) {
        bytes_total_ -= it->second;
        order_.erase(it);
        return;
      }
    }
  }

  void Enforce() {
    while (order_.size() > 1 &&
           ((capacity_ != 0 && order_.size() > capacity_) ||
            (byte_budget_ != 0 && bytes_total_ > byte_budget_))) {
      bytes_total_ -= order_.back().second;
      order_.pop_back();
    }
  }

  std::size_t capacity_;
  std::size_t byte_budget_;
  std::size_t bytes_total_ = 0;
  std::deque<std::pair<std::string, std::size_t>> order_;  // front = MRU
};

TEST(ShardedCatalogTest, PropertyMatchesGlobalLruModelAcrossShards) {
  // Random Put/Get/Evict sequences with mixed graph sizes; after every
  // operation the resident set AND the MRU order must match the global-LRU
  // reference model, for several shard counts (1 = the old catalog).
  const UncertainGraph small = testing::ChainGraph(0.3, 0.6);
  const UncertainGraph large = testing::RandomSmallGraph(25, 0.25, 9);
  const std::size_t small_bytes = EstimateGraphBytes(small);
  const std::size_t large_bytes = EstimateGraphBytes(large);
  for (const std::size_t shards : {1u, 2u, 8u}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      GraphCatalogOptions options;
      options.capacity = 5;
      options.byte_budget = 3 * large_bytes + small_bytes;
      options.shards = shards;
      GraphCatalog catalog(options);
      LruModel model(options.capacity, options.byte_budget);
      Rng rng(seed);
      for (int step = 0; step < 300; ++step) {
        const std::string name =
            "g" + std::to_string(rng.NextU64() % 9);  // 9 hot names
        const double roll = rng.NextDouble();
        if (roll < 0.45) {
          const bool big = rng.NextDouble() < 0.4;
          ASSERT_TRUE(catalog
                          .Put(name, big ? testing::RandomSmallGraph(25, 0.25, 9)
                                         : testing::ChainGraph(0.3, 0.6))
                          .ok());
          model.Put(name, big ? large_bytes : small_bytes);
        } else if (roll < 0.85) {
          EXPECT_EQ(catalog.Get(name) != nullptr, model.Get(name))
              << "step " << step << " name " << name << " shards " << shards;
        } else {
          EXPECT_EQ(catalog.Evict(name), model.Evict(name))
              << "step " << step << " name " << name << " shards " << shards;
        }
        ASSERT_EQ(catalog.Names(), model.Names())
            << "step " << step << " shards " << shards << " seed " << seed;
      }
    }
  }
}

TEST(ShardedCatalogTest, ConcurrentLoadGetEvictSmoke) {
  // Hammer the catalog from several threads; correctness here is "no crash,
  // no torn state" (the TSan CI job runs this test under ThreadSanitizer),
  // plus conservation: every Get either misses or returns a usable entry.
  GraphCatalogOptions options;
  options.capacity = 6;
  options.shards = 4;
  GraphCatalog catalog(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&catalog, t] {
      Rng rng(1000 + t);
      for (int step = 0; step < 200; ++step) {
        const std::string name = "g" + std::to_string(rng.NextU64() % 10);
        const double roll = rng.NextDouble();
        if (roll < 0.4) {
          ASSERT_TRUE(catalog.Put(name, testing::ChainGraph(0.3, 0.6)).ok());
        } else if (roll < 0.9) {
          const auto entry = catalog.Get(name);
          if (entry != nullptr) {
            ASSERT_EQ(entry->graph.num_nodes(), 3u);
          }
        } else {
          catalog.Evict(name);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(catalog.size(), 6u);
  const CatalogStats stats = catalog.stats();
  EXPECT_EQ(stats.hits + stats.misses >= 1u, true);
}

}  // namespace
}  // namespace vulnds::serve
