#include "serve/lru_cache.h"

#include <gtest/gtest.h>

namespace vulnds::serve {
namespace {

TEST(LruCacheTest, GetMissesOnEmpty) {
  LruCache<int> cache(2);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCacheTest, PutThenGet) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  const auto v = cache.Get("a");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Get("a"), nullptr);  // bump "a"; "b" is now LRU
  cache.Put("c", 3);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutReplacesInPlace) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("a", 9);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("a"), 9);
}

TEST(LruCacheTest, PutOnResidentKeyRefreshesRecency) {
  // Regression: a hot re-inserted entry must be spliced to the front, not
  // left at the tail as the next eviction victim.
  LruCache<int> cache(2);
  cache.Put("hot", 1);
  cache.Put("cold", 2);  // recency: cold > hot
  cache.Put("hot", 3);   // re-insert must refresh recency: hot > cold
  cache.Put("new", 4);   // evicts "cold", never "hot"
  EXPECT_EQ(cache.Peek("cold"), nullptr);
  ASSERT_NE(cache.Peek("hot"), nullptr);
  EXPECT_EQ(*cache.Peek("hot"), 3);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, PeekNeitherCountsNorPromotes) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Peek("a"), nullptr);  // "a" stays LRU despite the peek
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.Put("c", 3);  // evicts "a"
  EXPECT_EQ(cache.Peek("a"), nullptr);
  EXPECT_NE(cache.Peek("b"), nullptr);
}

TEST(LruCacheTest, EvictedEntryStaysValidForHolders) {
  LruCache<int> cache(1);
  cache.Put("a", 7);
  const auto held = cache.Get("a");
  cache.Put("b", 8);  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 7);  // the shared_ptr keeps the value alive
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  LruCache<int> cache(0);
  cache.Put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<int> cache(4);
  cache.Put("a", 1);
  cache.Put("b", 2);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("b"), nullptr);
}

// The byte-aware tests charge each int its own value as its size, so the
// arithmetic is visible in the test body.
LruCache<int>::SizeOf ValueAsBytes() {
  return [](const int& v) { return static_cast<std::size_t>(v); };
}

TEST(LruCacheTest, ByteBudgetEvictsEvenUnderEntryCapacity) {
  LruCache<int> cache(10, 100, ValueAsBytes());
  cache.Put("a", 40);
  cache.Put("b", 40);
  EXPECT_EQ(cache.bytes(), 80u);
  cache.Put("c", 40);  // 120 > 100: evict "a" (LRU), leaving 80
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Peek("a"), nullptr);
  EXPECT_NE(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, OversizePutRejectedAndResidentValueUntouched) {
  LruCache<int> cache(10, 100, ValueAsBytes());
  cache.Put("a", 50);
  cache.Put("b", 30);
  // A value alone above the whole budget must not wipe the cache to fit.
  cache.Put("huge", 101);
  EXPECT_EQ(cache.stats().rejected_oversize, 1u);
  EXPECT_EQ(cache.Peek("huge"), nullptr);
  // Rejected replacement leaves the resident value as it was.
  cache.Put("a", 500);
  EXPECT_EQ(cache.stats().rejected_oversize, 2u);
  const auto a = cache.Peek("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, 50);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(LruCacheTest, ReplacementRebooksBytesExactly) {
  LruCache<int> cache(10, 100, ValueAsBytes());
  cache.Put("a", 60);
  cache.Put("a", 10);  // shrink: 60 credited back, 10 charged
  EXPECT_EQ(cache.bytes(), 10u);
  cache.Put("a", 90);  // grow back within budget
  EXPECT_EQ(cache.bytes(), 90u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.Erase("a");
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(LruCacheTest, HitRate) {
  LruCache<int> cache(2);
  EXPECT_EQ(cache.stats().HitRate(), 0.0);
  cache.Put("a", 1);
  cache.Get("a");
  cache.Get("z");
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.5);
}

}  // namespace
}  // namespace vulnds::serve
