// End-to-end scripted serve sessions over stringstreams: the same loop the
// CLI runs on stdin/stdout, without a process boundary.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dyn/update_manager.h"
#include "graph/graph_io.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

std::string WriteTempGraph(const UncertainGraph& g, const std::string& name,
                           GraphFileFormat format) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteGraphFile(g, path, format).ok());
  return path;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Runs a scripted session against a fresh engine; returns the full output.
// Updates are wired the same way the CLI wires them.
std::string RunScript(const std::string& script, ThreadPool* pool = nullptr) {
  GraphCatalog catalog;
  QueryEngineOptions options;
  options.pool = pool;
  QueryEngine engine(&catalog, options);
  dyn::UpdateManager updates(&catalog);
  std::istringstream in(script);
  std::ostringstream out;
  RunServeLoop(in, out, engine, &updates);
  return out.str();
}

TEST(ServeLoopTest, LoadDetectQuitSession) {
  const std::string path = WriteTempGraph(testing::RandomSmallGraph(30, 0.15, 5),
                                          "serve_a.snap", GraphFileFormat::kBinary);
  const std::string output = RunScript("load g " + path +
                                       "\n"
                                       "detect g 3\n"
                                       "quit\n");
  const std::vector<std::string> lines = Lines(output);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("ok loaded g ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ok detect g ", 0), 0u) << lines[1];
  EXPECT_NE(lines[1].find("cached=0"), std::string::npos);
  EXPECT_EQ(lines.back(), "ok bye");
}

TEST(ServeLoopTest, RepeatedDetectIsCachedAndBitIdentical) {
  const std::string path = WriteTempGraph(testing::RandomSmallGraph(30, 0.15, 5),
                                          "serve_b.snap", GraphFileFormat::kBinary);
  const std::string output = RunScript("load g " + path +
                                       "\n"
                                       "detect g 3 BSRBK seed=7\n"
                                       "detect g 3 BSRBK seed=7\n"
                                       "quit\n");
  const std::vector<std::string> lines = Lines(output);
  // Locate the two detect response blocks (header ... payload ... ".").
  std::vector<std::size_t> headers;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("ok detect ", 0) == 0) headers.push_back(i);
  }
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_NE(lines[headers[0]].find("cached=0"), std::string::npos);
  EXPECT_NE(lines[headers[1]].find("cached=1"), std::string::npos);
  // Payload lines (rank node score) must match exactly, digit for digit.
  std::vector<std::string> first_payload;
  for (std::size_t i = headers[0] + 1; lines[i] != "."; ++i) {
    first_payload.push_back(lines[i]);
  }
  std::vector<std::string> second_payload;
  for (std::size_t i = headers[1] + 1; lines[i] != "."; ++i) {
    second_payload.push_back(lines[i]);
  }
  EXPECT_EQ(first_payload.size(), 3u);
  EXPECT_EQ(first_payload, second_payload);
}

TEST(ServeLoopTest, MalformedLinesDoNotStopTheLoop) {
  const std::string path = WriteTempGraph(testing::ChainGraph(0.3, 0.6),
                                          "serve_c.graph", GraphFileFormat::kText);
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  std::istringstream in("frobnicate\n"
                        "detect nope 3\n"
                        "detect g abc\n"
                        "load g " + path + "\n"
                        "detect g 0\n"
                        "detect g 2\n"
                        "quit\n");
  std::ostringstream out;
  const ServeLoopStats stats = RunServeLoop(in, out, engine);
  const std::vector<std::string> lines = Lines(out.str());
  // Four errors (unknown verb, missing graph, bad k, k=0), then success.
  EXPECT_EQ(stats.errors, 4u);
  EXPECT_EQ(stats.requests, 7u);
  ASSERT_GE(lines.size(), 5u);
  EXPECT_EQ(lines[0].rfind("err ", 0), 0u);
  EXPECT_EQ(lines.back(), "ok bye");
  bool detect_succeeded = false;
  for (const std::string& line : lines) {
    if (line.rfind("ok detect g ", 0) == 0) detect_succeeded = true;
  }
  EXPECT_TRUE(detect_succeeded);
}

TEST(ServeLoopTest, EofEndsSessionWithoutQuit) {
  const std::string output = RunScript("catalog\n");
  const std::vector<std::string> lines = Lines(output);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ok catalog", 0), 0u);
  EXPECT_EQ(lines.back(), ".");
}

TEST(ServeLoopTest, SaveRoundTripsThroughBinary) {
  const std::string text_path = WriteTempGraph(
      testing::PaperExampleGraph(0.2), "serve_d.graph", GraphFileFormat::kText);
  const std::string snap_path = ::testing::TempDir() + "/serve_d.snap";
  const std::string output = RunScript("load g " + text_path +
                                       "\n"
                                       "save g " + snap_path +
                                       "\n"
                                       "evict g\n"
                                       "load g2 " + snap_path +
                                       "\n"
                                       "stats g2\n"
                                       "quit\n");
  EXPECT_NE(output.find("ok saved g"), std::string::npos) << output;
  EXPECT_NE(output.find("ok evicted g"), std::string::npos);
  EXPECT_NE(output.find("ok loaded g2 nodes=5 edges=6"), std::string::npos);
  EXPECT_NE(output.find("nodes=5"), std::string::npos);
}

TEST(ServeLoopTest, UpdateCommitVersionsSession) {
  const std::string path = WriteTempGraph(testing::PaperExampleGraph(0.2),
                                          "serve_u.snap", GraphFileFormat::kBinary);
  const std::string output = RunScript("load g " + path +
                                       "\n"
                                       "addedge g 4 0 0.5\n"
                                       "setprob g 0 1 0.75\n"
                                       "deledge g 3 4\n"
                                       "commit g\n"
                                       "detect g@v1 2\n"
                                       "versions g\n"
                                       "quit\n");
  EXPECT_NE(output.find("ok addedge g 4 0 p=0.5 pending=1 live_edges=7"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("ok setprob g 0 1 p=0.75 pending=2 live_edges=7"),
            std::string::npos);
  EXPECT_NE(output.find("ok deledge g 3 4 pending=3 live_edges=6"),
            std::string::npos);
  EXPECT_NE(output.find("ok committed g@v1 nodes=5 edges=6 ops=3"),
            std::string::npos);
  EXPECT_NE(output.find("ok detect g@v1 "), std::string::npos);
  EXPECT_NE(output.find("ok versions g count=2"), std::string::npos);
  EXPECT_NE(output.find("v0 g nodes=5 edges=6 ops=0"), std::string::npos);
  EXPECT_NE(output.find("v1 g@v1 nodes=5 edges=6 ops=3"), std::string::npos);
}

TEST(ServeLoopTest, UpdateErrorsKeepTheLoopAlive) {
  const std::string path = WriteTempGraph(testing::ChainGraph(0.3, 0.6),
                                          "serve_v.graph", GraphFileFormat::kText);
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  dyn::UpdateManager updates(&catalog);
  std::istringstream in("addedge nope 0 1 0.5\n"
                        "load g " + path + "\n"
                        "commit g\n"          // nothing staged
                        "deledge g 2 0\n"     // no such edge
                        "addedge g 2 0 0.4\n"
                        "commit g\n"
                        "quit\n");
  std::ostringstream out;
  const ServeLoopStats stats = RunServeLoop(in, out, engine, &updates);
  EXPECT_EQ(stats.errors, 3u);
  EXPECT_EQ(stats.requests, 7u);
  EXPECT_EQ(stats.updates, 2u);  // the accepted addedge and its commit
  EXPECT_NE(out.str().find("ok committed g@v1"), std::string::npos) << out.str();
}

TEST(ServeLoopTest, UpdateVerbsWithoutBackendAreErrors) {
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  std::istringstream in("addedge g 0 1 0.5\n"
                        "commit g\n"
                        "versions g\n"
                        "quit\n");
  std::ostringstream out;
  const ServeLoopStats stats = RunServeLoop(in, out, engine, nullptr);
  EXPECT_EQ(stats.errors, 3u);
  EXPECT_NE(out.str().find("err dynamic updates are not enabled"),
            std::string::npos);
  EXPECT_EQ(Lines(out.str()).back(), "ok bye");
}

TEST(ServeLoopTest, CommittedVersionIsQueryableAndCachedIndependently) {
  const std::string path = WriteTempGraph(testing::RandomSmallGraph(25, 0.2, 3),
                                          "serve_w.snap", GraphFileFormat::kBinary);
  const std::string output = RunScript("load g " + path +
                                       "\n"
                                       "detect g 3 BSRBK seed=5\n"
                                       "setprob g " +
                                       [&] {
                                         // Pick a real edge of the fixture.
                                         const UncertainGraph g =
                                             testing::RandomSmallGraph(25, 0.2, 3);
                                         const UncertainEdge e = g.edges()[0];
                                         return std::to_string(e.src) + " " +
                                                std::to_string(e.dst);
                                       }() +
                                       " 0.123\n"
                                       "commit g\n"
                                       "detect g 3 BSRBK seed=5\n"   // cache hit
                                       "detect g@v1 3 BSRBK seed=5\n"  // cold
                                       "quit\n");
  const std::vector<std::string> lines = Lines(output);
  std::vector<std::string> detect_headers;
  for (const std::string& line : lines) {
    if (line.rfind("ok detect ", 0) == 0) detect_headers.push_back(line);
  }
  ASSERT_EQ(detect_headers.size(), 3u) << output;
  EXPECT_NE(detect_headers[0].find("cached=0"), std::string::npos);
  EXPECT_NE(detect_headers[1].find("cached=1"), std::string::npos)
      << "base version untouched by the commit must keep hitting the cache";
  EXPECT_NE(detect_headers[2].find("cached=0"), std::string::npos)
      << "the new version must not inherit the base version's cache line";
}

TEST(ReadRequestLineTest, CapsAndResyncsAtNextNewline) {
  std::istringstream in("short\n" + std::string(40, 'x') + "\nnext\ntail");
  std::string line;
  EXPECT_EQ(ReadRequestLine(in, &line, 16), ReadLineResult::kLine);
  EXPECT_EQ(line, "short");
  EXPECT_EQ(ReadRequestLine(in, &line, 16), ReadLineResult::kOversized);
  EXPECT_EQ(ReadRequestLine(in, &line, 16), ReadLineResult::kLine);
  EXPECT_EQ(line, "next") << "stream must resync at the newline";
  // Final unterminated line behaves like getline: returned, then EOF.
  EXPECT_EQ(ReadRequestLine(in, &line, 16), ReadLineResult::kLine);
  EXPECT_EQ(line, "tail");
  EXPECT_EQ(ReadRequestLine(in, &line, 16), ReadLineResult::kEof);
}

TEST(ReadRequestLineTest, OversizedFinalLineWithoutNewline) {
  std::istringstream in(std::string(64, 'y'));
  std::string line;
  EXPECT_EQ(ReadRequestLine(in, &line, 8), ReadLineResult::kOversized);
  EXPECT_EQ(ReadRequestLine(in, &line, 8), ReadLineResult::kEof);
}

TEST(ServeLoopTest, OversizedLineAnswersOneErrAndLoopContinues) {
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  // One hostile line longer than the cap, then a valid request: the loop
  // must answer exactly one err for the flood and keep serving.
  std::istringstream in(std::string(kMaxRequestLineBytes + 100, 'z') +
                        "\ncatalog\nquit\n");
  std::ostringstream out;
  const ServeLoopStats stats = RunServeLoop(in, out, engine);
  const std::vector<std::string> lines = Lines(out.str());
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 1u);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("err request line exceeds", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ok catalog", 0), 0u);
  EXPECT_EQ(lines.back(), "ok bye");
}

TEST(ServeLoopTest, TruthAndEngineStats) {
  const std::string path = WriteTempGraph(testing::RandomSmallGraph(20, 0.2, 9),
                                          "serve_e.snap", GraphFileFormat::kBinary);
  const std::string output = RunScript("load g " + path +
                                       "\n"
                                       "truth g 3 300 7\n"
                                       "truth g 3 300 7\n"
                                       "stats\n"
                                       "quit\n");
  const std::vector<std::string> lines = Lines(output);
  std::vector<std::string> truth_headers;
  for (const std::string& line : lines) {
    if (line.rfind("ok truth ", 0) == 0) truth_headers.push_back(line);
  }
  ASSERT_EQ(truth_headers.size(), 2u);
  EXPECT_NE(truth_headers[0].find("cached=0"), std::string::npos);
  EXPECT_NE(truth_headers[1].find("cached=1"), std::string::npos);
  EXPECT_NE(output.find("cache_hits=1"), std::string::npos) << output;
  // The one-line session summary: loop counters + result cache counters.
  // 4 requests so far (load, truth, truth, stats — counted before output).
  EXPECT_NE(output.find("serve requests=4 errors=0 updates=0 hits=1 "
                        "misses=1 evictions=0"),
            std::string::npos)
      << output;
}

}  // namespace
}  // namespace vulnds::serve
