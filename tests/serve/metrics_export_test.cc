// The serve stack's observability surface: metric coverage of the
// `metrics` exposition, per-stage latency accounting, slow-query logging
// through the engine, deterministic clocks, and the stats() byte-compat
// contract (registry-backed counters must count exactly what the old
// atomics counted).

#include "serve/metrics_export.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "serve/query_engine.h"
#include "serve/session.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

// Deterministic clock advanced by hand from the test body.
struct FakeClock {
  std::shared_ptr<int64_t> now = std::make_shared<int64_t>(0);
  obs::ClockMicros fn() const {
    auto held = now;
    return [held] { return *held; };
  }
};

DetectorOptions SmallDetect(std::size_t k = 3) {
  DetectorOptions options;
  options.k = k;
  return options;
}

TEST(MetricsExportTest, ExpositionCoversEveryServeSubsystem) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine.Detect("g", SmallDetect()).ok());  // cold
  ASSERT_TRUE(engine.Detect("g", SmallDetect()).ok());  // cached
  ASSERT_TRUE(engine.Truth("g", 50, 7).ok());

  ServerStats server;
  server.sessions_started.store(3);
  server.requests.store(17);
  const std::string text = RenderServeMetrics(engine, &server);

  // Engine request counters and latency histograms, by verb and outcome.
  EXPECT_NE(text.find("vulnds_engine_requests_total{verb=\"detect\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_engine_requests_total{verb=\"truth\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_engine_request_micros_bucket{verb=\"detect\","
                      "cached=\"1\",le=\"+Inf\"} 1"),
            std::string::npos);
  // Per-stage detect latency histograms (the cold run fills them).
  EXPECT_NE(text.find("vulnds_engine_stage_micros_count{stage=\"bounds\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("vulnds_engine_stage_micros_count{stage=\"cache_lookup\"}"),
      std::string::npos);
  // Result-cache families, per cache and per shard.
  EXPECT_NE(text.find("vulnds_cache_hits_total{cache=\"detect\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_cache_shard_entries{cache=\"detect\",shard="),
            std::string::npos);
  // Catalog aggregate and per-shard families.
  EXPECT_NE(text.find("vulnds_catalog_resident_graphs 1"), std::string::npos);
  EXPECT_NE(text.find("vulnds_catalog_shard_entries{shard="),
            std::string::npos);
  // Server counters mirrored from ServerStats.
  EXPECT_NE(text.find("vulnds_server_sessions_started_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_server_requests_total 17"), std::string::npos);
}

TEST(MetricsExportTest, NullServerStatsOmitsServerFamilies) {
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  const std::string text = RenderServeMetrics(engine, nullptr);
  EXPECT_EQ(text.find("vulnds_server_"), std::string::npos);
  EXPECT_NE(text.find("vulnds_engine_requests_total"), std::string::npos);
}

TEST(MetricsExportTest, StatsVerbCountersMatchRegistryBackedStats) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine.Detect("g", SmallDetect()).ok());
  ASSERT_TRUE(engine.Detect("g", SmallDetect()).ok());
  ASSERT_TRUE(engine.Truth("g", 50, 7).ok());

  // The registry counters ARE the stats() source: they must agree exactly,
  // preserving the old EngineStats (and thus `stats` verb) numbers.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.detect_queries, 2u);
  EXPECT_EQ(stats.truth_queries, 1u);
  obs::MetricRegistry* registry = engine.registry();
  EXPECT_EQ(registry
                ->GetCounter("vulnds_engine_requests_total", "",
                             {{"verb", "detect"}})
                ->Value(),
            stats.detect_queries);
  EXPECT_EQ(registry
                ->GetCounter("vulnds_engine_requests_total", "",
                             {{"verb", "truth"}})
                ->Value(),
            stats.truth_queries);
}

TEST(MetricsExportTest, SharedRegistryIsUsedWhenInjected) {
  obs::MetricRegistry registry;
  GraphCatalog catalog;
  QueryEngineOptions options;
  options.registry = &registry;
  QueryEngine engine(&catalog, options);
  EXPECT_EQ(engine.registry(), &registry);
  EXPECT_NE(registry.RenderPrometheus().find("vulnds_engine_requests_total"),
            std::string::npos);
}

TEST(MetricsExportTest, ColdDetectStageMicrosSumCloseToTotal) {
  GraphCatalog catalog;
  // Large enough that the measured stages dominate the fixed between-stage
  // bookkeeping (a few tens of microseconds).
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(120, 0.10, 9)).ok());
  std::ostringstream sink;
  obs::SlowQueryLog slowlog(&sink, 0);  // log every query
  QueryEngineOptions engine_options;
  engine_options.slowlog = &slowlog;
  QueryEngine engine(&catalog, engine_options);

  DetectorOptions options = SmallDetect(5);
  Result<DetectResponse> response = engine.Detect("g", options);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_FALSE(response->from_cache);
  ASSERT_EQ(slowlog.logged(), 1u);

  // Parse total_micros and the stage micros out of the JSONL record.
  const std::string line = sink.str();
  const auto total_pos = line.find("\"total_micros\":");
  ASSERT_NE(total_pos, std::string::npos);
  const int64_t total = std::stoll(line.substr(total_pos + 15));
  int64_t stage_sum = 0;
  std::size_t pos = 0;
  while ((pos = line.find("\"micros\":", pos)) != std::string::npos) {
    pos += 9;
    stage_sum += std::stoll(line.substr(pos));
  }
  ASSERT_GT(total, 0);
  // Acceptance gate: the per-stage spans account for the query. The 10%
  // margin needs total >> the fixed gap overhead; allow a small absolute
  // slack so a fast machine racing through a small graph cannot flake.
  // Sanitizer instrumentation inflates the untracked inter-stage gaps
  // (clock reads, allocator hooks), so the absolute slack is wider there.
  int64_t gap_slack = 120;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  gap_slack = 500;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  gap_slack = 500;
#endif
#endif
  EXPECT_GE(stage_sum, total - std::max<int64_t>(total / 10, gap_slack))
      << "stages miss too much of the total: " << line;
  EXPECT_LE(stage_sum, total) << line;
}

TEST(MetricsExportTest, SlowQueryLogRecordsVerbGraphAndCacheOutcome) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  std::ostringstream sink;
  obs::SlowQueryLog slowlog(&sink, 0);
  QueryEngineOptions engine_options;
  engine_options.slowlog = &slowlog;
  QueryEngine engine(&catalog, engine_options);

  ASSERT_TRUE(engine.Detect("g", SmallDetect()).ok());
  ASSERT_TRUE(engine.Detect("g", SmallDetect()).ok());
  ASSERT_TRUE(engine.Truth("g", 50, 7).ok());
  EXPECT_EQ(slowlog.logged(), 3u);

  std::istringstream lines(sink.str());
  std::string cold, cached, truth;
  ASSERT_TRUE(std::getline(lines, cold));
  ASSERT_TRUE(std::getline(lines, cached));
  ASSERT_TRUE(std::getline(lines, truth));
  EXPECT_NE(cold.find("\"verb\":\"detect\""), std::string::npos);
  EXPECT_NE(cold.find("\"graph\":\"g\""), std::string::npos);
  EXPECT_NE(cold.find("\"cached\":false"), std::string::npos);
  EXPECT_NE(cold.find("\"options\":\"method="), std::string::npos);
  EXPECT_NE(cached.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(truth.find("\"verb\":\"truth\""), std::string::npos);
}

TEST(MetricsExportTest, SlowlogThresholdSkipsFastQueries) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  std::ostringstream sink;
  obs::SlowQueryLog slowlog(&sink, 60'000'000);  // one minute: nothing logs
  QueryEngineOptions engine_options;
  engine_options.slowlog = &slowlog;
  QueryEngine engine(&catalog, engine_options);
  ASSERT_TRUE(engine.Detect("g", SmallDetect()).ok());
  EXPECT_EQ(slowlog.logged(), 0u);
  EXPECT_TRUE(sink.str().empty());
}

TEST(MetricsExportTest, ConstantClockMakesResponseTimeZero) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  FakeClock clock;
  QueryEngineOptions engine_options;
  engine_options.clock = clock.fn();
  QueryEngine engine(&catalog, engine_options);

  Result<DetectResponse> response = engine.Detect("g", SmallDetect());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->seconds, 0.0);  // time= token becomes "time=0"
  Result<TruthResponse> truth = engine.Truth("g", 50, 7);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(truth->seconds, 0.0);
  EXPECT_EQ(engine.NowMicros(), 0);
}

TEST(MetricsExportTest, WaveTelemetryFlowsIntoRegistry) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(60, 0.2, 11)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 4;
  options.method = Method::kBsrbk;
  ASSERT_TRUE(engine.Detect("g", options).ok());
  const EngineStats stats = engine.stats();
  obs::MetricRegistry* registry = engine.registry();
  EXPECT_EQ(
      registry->GetCounter("vulnds_engine_waves_issued_total", "")->Value(),
      stats.waves_issued);
  EXPECT_EQ(
      registry->GetCounter("vulnds_engine_worlds_wasted_total", "")->Value(),
      stats.worlds_wasted);
}

}  // namespace
}  // namespace vulnds::serve
