#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

void ExpectSameResult(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.topk, b.topk);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i], b.scores[i]);  // bit-exact
  }
}

TEST(CanonicalizeOptionsTest, IrrelevantFieldsNormalized) {
  DetectorOptions a;
  a.method = Method::kBsr;
  a.k = 5;
  a.bk = 99;               // BSR never reads bk
  a.naive_samples = 1234;  // nor the naive budget
  DetectorOptions b;
  b.method = Method::kBsr;
  b.k = 5;
  EXPECT_EQ(CanonicalOptionsKey(a), CanonicalOptionsKey(b));
}

TEST(CanonicalizeOptionsTest, RelevantFieldsKept) {
  DetectorOptions a;
  a.method = Method::kBsrbk;
  a.bk = 8;
  DetectorOptions b;
  b.method = Method::kBsrbk;
  b.bk = 16;
  EXPECT_NE(CanonicalOptionsKey(a), CanonicalOptionsKey(b));
  DetectorOptions c;
  c.seed = 1;
  DetectorOptions d;
  d.seed = 2;
  EXPECT_NE(CanonicalOptionsKey(c), CanonicalOptionsKey(d));
}

TEST(QueryEngineTest, DetectUnknownGraphIsNotFound) {
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  DetectorOptions options;
  EXPECT_EQ(engine.Detect("ghost", options).status().code(),
            StatusCode::kNotFound);
}

TEST(QueryEngineTest, SecondIdenticalDetectServedFromCache) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 3;
  Result<DetectResponse> first = engine.Detect("g", options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);
  Result<DetectResponse> second = engine.Detect("g", options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  ExpectSameResult(first->result, second->result);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.detect_queries, 2u);
  EXPECT_EQ(stats.result_cache.hits, 1u);
}

TEST(QueryEngineTest, DifferentOptionsMissTheCache) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 3;
  ASSERT_TRUE(engine.Detect("g", options).ok());
  options.k = 4;
  Result<DetectResponse> other = engine.Detect("g", options);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->from_cache);
}

TEST(QueryEngineTest, IrrelevantKnobsShareACacheLine) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.method = Method::kBsr;
  options.k = 3;
  options.bk = 16;
  ASSERT_TRUE(engine.Detect("g", options).ok());
  options.bk = 64;  // BSR ignores bk, so this is the same query
  Result<DetectResponse> second = engine.Detect("g", options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
}

TEST(QueryEngineTest, ThreadsKnobIsExecutionOnly) {
  // threads= selects a pool, never an answer: a request pinned to any
  // thread count returns the bit-identical result and shares the cache line
  // of its serial twin (parallel BSRBK is deterministic by construction).
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.method = Method::kBsrbk;
  options.k = 3;
  options.threads = 3;
  Result<DetectResponse> parallel = engine.Detect("g", options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_FALSE(parallel->from_cache);
  options.threads = 1;
  Result<DetectResponse> serial = engine.Detect("g", options);
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(serial->from_cache) << "thread count must not fragment the cache";
  ExpectSameResult(parallel->result, serial->result);

  // And with the cache off, a genuinely serial re-run still matches.
  QueryEngineOptions no_cache;
  no_cache.result_cache_capacity = 0;
  QueryEngine cold_engine(&catalog, no_cache);
  options.threads = 4;
  Result<DetectResponse> four = cold_engine.Detect("g", options);
  options.threads = 1;
  Result<DetectResponse> one = cold_engine.Detect("g", options);
  ASSERT_TRUE(four.ok() && one.ok());
  EXPECT_FALSE(four->from_cache);
  EXPECT_FALSE(one->from_cache);
  ExpectSameResult(four->result, one->result);
}

TEST(QueryEngineTest, WaveKnobIsExecutionOnly) {
  // wave= selects a schedule, never an answer: a fixed-wave request shares
  // the cache line of its adaptive twin, and with the cache off both
  // schedules return bit-identical results.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.method = Method::kBsrbk;
  options.k = 3;
  options.threads = 3;  // a real pool so the wave machinery actually runs
  options.wave_mode = WaveMode::kAdaptive;
  Result<DetectResponse> adaptive = engine.Detect("g", options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_FALSE(adaptive->from_cache);
  options.wave_mode = WaveMode::kFixed;
  options.wave_size = 100;
  Result<DetectResponse> fixed = engine.Detect("g", options);
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(fixed->from_cache) << "wave schedule must not fragment the cache";
  ExpectSameResult(adaptive->result, fixed->result);
  EXPECT_EQ(CanonicalOptionsKey(options),
            CanonicalOptionsKey(DetectorOptions{.method = Method::kBsrbk,
                                                .k = 3}));

  QueryEngineOptions no_cache;
  no_cache.result_cache_capacity = 0;
  QueryEngine cold_engine(&catalog, no_cache);
  Result<DetectResponse> cold_fixed = cold_engine.Detect("g", options);
  options.wave_mode = WaveMode::kAdaptive;
  options.wave_size = 0;
  Result<DetectResponse> cold_adaptive = cold_engine.Detect("g", options);
  ASSERT_TRUE(cold_fixed.ok() && cold_adaptive.ok());
  EXPECT_FALSE(cold_fixed->from_cache);
  EXPECT_FALSE(cold_adaptive->from_cache);
  ExpectSameResult(cold_fixed->result, cold_adaptive->result);
}

TEST(QueryEngineTest, ShardedCacheKeepsSingleShardSemantics) {
  // The engine's observable caching behavior must be identical for every
  // result_cache_shards value; sharding only changes which mutex a lookup
  // takes. Counters included: same hits, misses, inserts.
  const UncertainGraph g = testing::RandomSmallGraph(30, 0.15, 5);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    GraphCatalog catalog;
    ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
    QueryEngineOptions engine_options;
    engine_options.result_cache_shards = shards;
    QueryEngine engine(&catalog, engine_options);
    DetectorOptions options;
    options.k = 3;
    Result<DetectResponse> first = engine.Detect("g", options);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first->from_cache);
    Result<DetectResponse> second = engine.Detect("g", options);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second->from_cache) << "shards=" << shards;
    ExpectSameResult(first->result, second->result);
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.detect_queries, 2u);
    EXPECT_EQ(stats.result_cache.hits, 1u);
    EXPECT_EQ(stats.result_cache.misses, 1u);
    EXPECT_EQ(stats.result_cache.inserts, 1u);
    EXPECT_EQ(stats.result_cache_shards, shards);
  }
}

TEST(QueryEngineTest, WaveTelemetryCountsExecutedRunsOnly) {
  // worlds_wasted / waves_issued aggregate over executed detects; a cached
  // replay must not re-book the original run's schedule telemetry.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(40, 0.2, 7)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.method = Method::kBsrbk;
  options.k = 2;
  options.threads = 4;  // wave machinery engaged -> waves_issued > 0
  Result<DetectResponse> cold = engine.Detect("g", options);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold->result.samples_processed, 0u)
      << "workload drifted: verification answered without sampling";
  const EngineStats after_cold = engine.stats();
  EXPECT_EQ(after_cold.waves_issued, cold->result.waves_issued);
  EXPECT_EQ(after_cold.worlds_wasted, cold->result.worlds_wasted);
  EXPECT_GT(after_cold.waves_issued, 0u);
  Result<DetectResponse> cached = engine.Detect("g", options);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  const EngineStats after_cached = engine.stats();
  EXPECT_EQ(after_cached.waves_issued, after_cold.waves_issued);
  EXPECT_EQ(after_cached.worlds_wasted, after_cold.worlds_wasted);
}

TEST(QueryEngineTest, ManyDistinctThreadCountsStayBoundedAndCorrect) {
  // Cycling threads= must not accumulate unbounded pools: past the
  // engine's cap the request falls back to the default pool, which is
  // invisible in the results (thread count never changes an answer).
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(20, 0.2, 5)).ok());
  QueryEngineOptions no_cache;
  no_cache.result_cache_capacity = 0;
  QueryEngine engine(&catalog, no_cache);
  DetectorOptions options;
  options.k = 2;
  Result<DetectResponse> reference = engine.Detect("g", options);
  ASSERT_TRUE(reference.ok());
  for (std::size_t threads = 2; threads <= 14; ++threads) {
    options.threads = threads;
    Result<DetectResponse> r = engine.Detect("g", options);
    ASSERT_TRUE(r.ok()) << "threads=" << threads;
    ExpectSameResult(reference->result, r->result);
  }
}

TEST(QueryEngineTest, OverlargeThreadsRequestIsRejected) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(10, 0.2, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 2;
  options.threads = kMaxDetectThreads + 1;
  EXPECT_EQ(engine.Detect("g", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, CacheIsPerGraph) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g1", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  ASSERT_TRUE(catalog.Put("g2", testing::RandomSmallGraph(30, 0.15, 6)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 3;
  ASSERT_TRUE(engine.Detect("g1", options).ok());
  Result<DetectResponse> other = engine.Detect("g2", options);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->from_cache);
}

TEST(QueryEngineTest, EngineResultMatchesDirectDetection) {
  const UncertainGraph g = testing::RandomSmallGraph(30, 0.15, 5);
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 3;
  Result<DetectionResult> direct = DetectTopK(g, options);
  ASSERT_TRUE(direct.ok());
  Result<DetectResponse> served = engine.Detect("g", options);
  ASSERT_TRUE(served.ok());
  ExpectSameResult(*direct, served->result);
}

TEST(QueryEngineTest, ContextWarmsAcrossDifferentQueries) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.method = Method::kBsr;
  options.k = 3;
  ASSERT_TRUE(engine.Detect("g", options).ok());
  options.k = 4;  // different query, same bounds
  ASSERT_TRUE(engine.Detect("g", options).ok());
  const auto entry = catalog.Get("g");
  std::lock_guard<std::mutex> lock(entry->context_mu);
  EXPECT_GT(entry->context.reuse_hits, 0u);
}

TEST(QueryEngineTest, ReloadInvalidatesCachedResults) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 3;
  Result<DetectResponse> first = engine.Detect("g", options);
  ASSERT_TRUE(first.ok());
  // Replace the snapshot under the same name with a different graph.
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 99)).ok());
  Result<DetectResponse> after_reload = engine.Detect("g", options);
  ASSERT_TRUE(after_reload.ok());
  EXPECT_FALSE(after_reload->from_cache);
  Result<DetectionResult> direct =
      DetectTopK(testing::RandomSmallGraph(30, 0.15, 99), options);
  ASSERT_TRUE(direct.ok());
  ExpectSameResult(*direct, after_reload->result);
}

TEST(QueryEngineTest, EvictThenReloadDoesNotServeStaleResults) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 3;
  ASSERT_TRUE(engine.Detect("g", options).ok());
  ASSERT_TRUE(catalog.Evict("g"));
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  Result<DetectResponse> after = engine.Detect("g", options);
  ASSERT_TRUE(after.ok());
  // Same graph data, but a fresh snapshot: the old cache line must not hit.
  EXPECT_FALSE(after->from_cache);
}

TEST(QueryEngineTest, InvalidRequestFailsEvenWithCanonicalTwinCached) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(30, 0.15, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.method = Method::kNaive;
  options.k = 3;
  options.naive_samples = 200;
  ASSERT_TRUE(engine.Detect("g", options).ok());
  // Method N ignores eps, so this canonicalizes to the cached key — but an
  // invalid request must fail identically warm or cold.
  options.eps = 7.0;
  EXPECT_EQ(engine.Detect("g", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, TruthCachedBySamplesAndSeed) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(20, 0.2, 5)).ok());
  QueryEngine engine(&catalog);
  Result<TruthResponse> first = engine.Truth("g", 200, 7);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  Result<TruthResponse> second = engine.Truth("g", 200, 7);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(first->truth.probabilities, second->truth.probabilities);
  Result<TruthResponse> other_seed = engine.Truth("g", 200, 8);
  ASSERT_TRUE(other_seed.ok());
  EXPECT_FALSE(other_seed->from_cache);
}

TEST(QueryEngineTest, InvalidOptionsPropagateStatus) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(10, 0.2, 5)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 0;
  EXPECT_EQ(engine.Detect("g", options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Truth("g", 0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, ConcurrentIdenticalDetectsComputeOnce) {
  // Whatever the interleaving, an identical concurrent query either hits
  // the result cache outright, or joins the leader's batch and is answered
  // by the in-batch cache re-check — in every case the detection runs (and
  // the cache is filled) exactly once, and all callers see identical bytes.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(24, 0.2, 17)).ok());
  QueryEngine engine(&catalog);
  DetectorOptions options;
  options.k = 4;
  options.seed = 23;
  constexpr int kThreads = 4;
  std::vector<Result<DetectResponse>> responses;
  for (int i = 0; i < kThreads; ++i) {
    responses.push_back(Status::Internal("not run"));
  }
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { responses[i] = engine.Detect("g", options); });
    }
    for (std::thread& t : threads) t.join();
  }
  ASSERT_TRUE(responses[0].ok());
  for (int i = 1; i < kThreads; ++i) {
    ASSERT_TRUE(responses[i].ok()) << i;
    EXPECT_EQ(responses[0]->result.topk, responses[i]->result.topk);
    EXPECT_EQ(responses[0]->result.scores, responses[i]->result.scores);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.detect_queries, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(stats.result_cache.inserts, 1u)
      << "the detection must have run exactly once";
}

TEST(QueryEngineTest, BatchedDistinctQueriesMatchSerialResults) {
  // Distinct seeds force distinct cache keys; concurrent issuance may
  // batch them under one context-lock acquisition, and each result must
  // equal the one a serial engine computes.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(24, 0.2, 17)).ok());
  QueryEngine engine(&catalog);
  constexpr int kThreads = 4;
  std::vector<Result<DetectResponse>> responses;
  for (int i = 0; i < kThreads; ++i) {
    responses.push_back(Status::Internal("not run"));
  }
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        DetectorOptions options;
        options.k = 4;
        options.seed = 500 + static_cast<uint64_t>(i);
        responses[i] = engine.Detect("g", options);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(responses[i].ok()) << i;
    GraphCatalog fresh_catalog;
    ASSERT_TRUE(
        fresh_catalog.Put("g", testing::RandomSmallGraph(24, 0.2, 17)).ok());
    QueryEngine fresh(&fresh_catalog);
    DetectorOptions options;
    options.k = 4;
    options.seed = 500 + static_cast<uint64_t>(i);
    const Result<DetectResponse> serial = fresh.Detect("g", options);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(serial->result.topk, responses[i]->result.topk);
    EXPECT_EQ(serial->result.scores, responses[i]->result.scores);
  }
}

}  // namespace
}  // namespace vulnds::serve
