// ShardedLruCache must be observationally identical to the one-shard
// LruCache reference model: same values resident, same hit/miss/eviction
// counters, same eviction order — for every shard count. Sharding may only
// change which mutex a caller takes.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/lru_cache.h"

namespace vulnds::serve {
namespace {

// Compares the sharded cache against the reference model over the whole key
// universe: residency, value, and aggregate counters.
void ExpectEquivalent(LruCache<int>& reference, ShardedLruCache<int>& sharded,
                      const std::vector<std::string>& universe,
                      const char* what) {
  ASSERT_EQ(reference.size(), sharded.size()) << what;
  for (const std::string& key : universe) {
    const auto expected = reference.Peek(key);
    const auto actual = sharded.Peek(key);
    ASSERT_EQ(expected == nullptr, actual == nullptr) << what << " key " << key;
    if (expected != nullptr) {
      EXPECT_EQ(*expected, *actual) << what << " key " << key;
    }
  }
  const CacheStats& ref = reference.stats();
  const CacheStats agg = sharded.stats();
  EXPECT_EQ(ref.hits, agg.hits) << what;
  EXPECT_EQ(ref.misses, agg.misses) << what;
  EXPECT_EQ(ref.evictions, agg.evictions) << what;
  EXPECT_EQ(ref.inserts, agg.inserts) << what;
}

TEST(ShardedLruCacheTest, RandomOpSequencesMatchReferenceModel) {
  // Random Put/Get/Erase/Peek streams over a small key universe, checked
  // op by op. Capacity small enough that evictions are constant; key count
  // large enough that every shard of an 8-way split is exercised.
  const std::vector<std::size_t> shard_counts = {1, 2, 8};
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t capacity : {std::size_t{1}, std::size_t{3},
                                       std::size_t{7}}) {
      LruCache<int> reference(capacity);
      ShardedLruCache<int> sharded(capacity, shards);
      std::vector<std::string> universe;
      for (int i = 0; i < 12; ++i) universe.push_back("k" + std::to_string(i));
      Rng rng(1000 * shards + capacity);
      for (int step = 0; step < 600; ++step) {
        const std::string& key = universe[rng.NextBounded(universe.size())];
        switch (rng.NextBounded(4)) {
          case 0: {
            const int value = static_cast<int>(rng.NextBounded(1000));
            reference.Put(key, value);
            sharded.Put(key, value);
            break;
          }
          case 1: {
            const auto a = reference.Get(key);
            const auto b = sharded.Get(key);
            ASSERT_EQ(a == nullptr, b == nullptr) << key;
            if (a != nullptr) {
              EXPECT_EQ(*a, *b);
            }
            break;
          }
          case 2:
            EXPECT_EQ(reference.Erase(key), sharded.Erase(key)) << key;
            break;
          default: {
            const auto a = reference.Peek(key);
            const auto b = sharded.Peek(key);
            ASSERT_EQ(a == nullptr, b == nullptr) << key;
            break;
          }
        }
        ExpectEquivalent(reference, sharded, universe,
                         ("shards=" + std::to_string(shards) +
                          " capacity=" + std::to_string(capacity) +
                          " step=" + std::to_string(step))
                             .c_str());
      }
    }
  }
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedLruCache<int>(8, 0).shard_count(), 8u);  // default
  EXPECT_EQ(ShardedLruCache<int>(8, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedLruCache<int>(8, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedLruCache<int>(8, 8).shard_count(), 8u);
  EXPECT_EQ(ShardedLruCache<int>(8, 100000).shard_count(), 256u);  // capped
}

TEST(ShardedLruCacheTest, ZeroCapacityDisables) {
  ShardedLruCache<int> cache(0, 4);
  cache.Put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(ShardedLruCacheTest, PeekNeitherCountsNorPromotes) {
  // Peek is the engine's in-batch recheck: it must not touch the hit/miss
  // counters (the query already counted its lookup) and must not promote
  // the entry (a recheck is not a use).
  ShardedLruCache<int> cache(2, 2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Peek("a"), nullptr);  // "a" stays LRU despite the peek
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.Put("c", 3);  // evicts "a", not "b"
  EXPECT_EQ(cache.Peek("a"), nullptr);
  EXPECT_NE(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("c"), nullptr);
}

TEST(ShardedLruCacheTest, PutOnResidentKeyRefreshesRecency) {
  // Regression: re-inserting a hot key must move it to the front BEFORE the
  // value is replaced, so it is not the next eviction victim.
  ShardedLruCache<int> cache(2, 2);
  cache.Put("hot", 1);
  cache.Put("cold", 2);   // recency: cold > hot
  cache.Put("hot", 3);    // re-insert refreshes recency: hot > cold
  cache.Put("new", 4);    // must evict "cold"
  EXPECT_EQ(cache.Peek("cold"), nullptr);
  ASSERT_NE(cache.Peek("hot"), nullptr);
  EXPECT_EQ(*cache.Peek("hot"), 3);
  EXPECT_NE(cache.Peek("new"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCacheTest, EvictedEntryStaysValidForHolders) {
  ShardedLruCache<int> cache(1, 4);
  cache.Put("a", 7);
  const auto held = cache.Get("a");
  cache.Put("b", 8);  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 7);  // the shared_ptr keeps the value alive
}

TEST(ShardedLruCacheTest, ClearAndEraseMaintainGlobalSize) {
  ShardedLruCache<int> cache(8, 4);
  for (int i = 0; i < 6; ++i) cache.Put("k" + std::to_string(i), i);
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_TRUE(cache.Erase("k3"));
  EXPECT_FALSE(cache.Erase("k3"));
  EXPECT_EQ(cache.size(), 5u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(cache.Peek("k" + std::to_string(i)), nullptr);
  }
}

TEST(ShardedLruCacheTest, ConcurrentMixedTrafficStaysWithinCapacity) {
  // TSan-covered hammer: concurrent Get/Put/Erase over overlapping keys.
  // The invariant checked here is bounded residency and internal
  // consistency; exact eviction order under races is unobservable.
  constexpr std::size_t kCapacity = 16;
  ShardedLruCache<int> cache(kCapacity, 8);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int thread_id = 0; thread_id < kThreads; ++thread_id) {
    threads.emplace_back([&cache, thread_id] {
      Rng rng(thread_id + 1);
      for (int step = 0; step < 2000; ++step) {
        const std::string key = "k" + std::to_string(rng.NextBounded(40));
        switch (rng.NextBounded(3)) {
          case 0:
            cache.Put(key, static_cast<int>(rng.NextBounded(100)));
            break;
          case 1:
            cache.Get(key);
            break;
          default:
            cache.Erase(key);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), kCapacity);
  std::size_t resident = 0;
  for (const CacheShardInfo& shard : cache.ShardInfos()) {
    resident += shard.size;
  }
  EXPECT_EQ(resident, cache.size());
}

}  // namespace
}  // namespace vulnds::serve
