// ShardedLruCache must be observationally identical to the one-shard
// LruCache reference model: same values resident, same hit/miss/eviction
// counters, same eviction order — for every shard count. Sharding may only
// change which mutex a caller takes.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/lru_cache.h"

namespace vulnds::serve {
namespace {

// Compares the sharded cache against the reference model over the whole key
// universe: residency, value, and aggregate counters.
void ExpectEquivalent(LruCache<int>& reference, ShardedLruCache<int>& sharded,
                      const std::vector<std::string>& universe,
                      const char* what) {
  ASSERT_EQ(reference.size(), sharded.size()) << what;
  for (const std::string& key : universe) {
    const auto expected = reference.Peek(key);
    const auto actual = sharded.Peek(key);
    ASSERT_EQ(expected == nullptr, actual == nullptr) << what << " key " << key;
    if (expected != nullptr) {
      EXPECT_EQ(*expected, *actual) << what << " key " << key;
    }
  }
  const CacheStats& ref = reference.stats();
  const CacheStats agg = sharded.stats();
  EXPECT_EQ(ref.hits, agg.hits) << what;
  EXPECT_EQ(ref.misses, agg.misses) << what;
  EXPECT_EQ(ref.evictions, agg.evictions) << what;
  EXPECT_EQ(ref.inserts, agg.inserts) << what;
}

TEST(ShardedLruCacheTest, RandomOpSequencesMatchReferenceModel) {
  // Random Put/Get/Erase/Peek streams over a small key universe, checked
  // op by op. Capacity small enough that evictions are constant; key count
  // large enough that every shard of an 8-way split is exercised.
  const std::vector<std::size_t> shard_counts = {1, 2, 8};
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t capacity : {std::size_t{1}, std::size_t{3},
                                       std::size_t{7}}) {
      LruCache<int> reference(capacity);
      ShardedLruCache<int> sharded(capacity, shards);
      std::vector<std::string> universe;
      for (int i = 0; i < 12; ++i) universe.push_back("k" + std::to_string(i));
      Rng rng(1000 * shards + capacity);
      for (int step = 0; step < 600; ++step) {
        const std::string& key = universe[rng.NextBounded(universe.size())];
        switch (rng.NextBounded(4)) {
          case 0: {
            const int value = static_cast<int>(rng.NextBounded(1000));
            reference.Put(key, value);
            sharded.Put(key, value);
            break;
          }
          case 1: {
            const auto a = reference.Get(key);
            const auto b = sharded.Get(key);
            ASSERT_EQ(a == nullptr, b == nullptr) << key;
            if (a != nullptr) {
              EXPECT_EQ(*a, *b);
            }
            break;
          }
          case 2:
            EXPECT_EQ(reference.Erase(key), sharded.Erase(key)) << key;
            break;
          default: {
            const auto a = reference.Peek(key);
            const auto b = sharded.Peek(key);
            ASSERT_EQ(a == nullptr, b == nullptr) << key;
            break;
          }
        }
        ExpectEquivalent(reference, sharded, universe,
                         ("shards=" + std::to_string(shards) +
                          " capacity=" + std::to_string(capacity) +
                          " step=" + std::to_string(step))
                             .c_str());
      }
    }
  }
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedLruCache<int>(8, 0).shard_count(), 8u);  // default
  EXPECT_EQ(ShardedLruCache<int>(8, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedLruCache<int>(8, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedLruCache<int>(8, 8).shard_count(), 8u);
  EXPECT_EQ(ShardedLruCache<int>(8, 100000).shard_count(), 256u);  // capped
}

TEST(ShardedLruCacheTest, ZeroCapacityDisables) {
  ShardedLruCache<int> cache(0, 4);
  cache.Put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(ShardedLruCacheTest, PeekNeitherCountsNorPromotes) {
  // Peek is the engine's in-batch recheck: it must not touch the hit/miss
  // counters (the query already counted its lookup) and must not promote
  // the entry (a recheck is not a use).
  ShardedLruCache<int> cache(2, 2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Peek("a"), nullptr);  // "a" stays LRU despite the peek
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.Put("c", 3);  // evicts "a", not "b"
  EXPECT_EQ(cache.Peek("a"), nullptr);
  EXPECT_NE(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("c"), nullptr);
}

TEST(ShardedLruCacheTest, PutOnResidentKeyRefreshesRecency) {
  // Regression: re-inserting a hot key must move it to the front BEFORE the
  // value is replaced, so it is not the next eviction victim.
  ShardedLruCache<int> cache(2, 2);
  cache.Put("hot", 1);
  cache.Put("cold", 2);   // recency: cold > hot
  cache.Put("hot", 3);    // re-insert refreshes recency: hot > cold
  cache.Put("new", 4);    // must evict "cold"
  EXPECT_EQ(cache.Peek("cold"), nullptr);
  ASSERT_NE(cache.Peek("hot"), nullptr);
  EXPECT_EQ(*cache.Peek("hot"), 3);
  EXPECT_NE(cache.Peek("new"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCacheTest, EvictedEntryStaysValidForHolders) {
  ShardedLruCache<int> cache(1, 4);
  cache.Put("a", 7);
  const auto held = cache.Get("a");
  cache.Put("b", 8);  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 7);  // the shared_ptr keeps the value alive
}

TEST(ShardedLruCacheTest, ClearAndEraseMaintainGlobalSize) {
  ShardedLruCache<int> cache(8, 4);
  for (int i = 0; i < 6; ++i) cache.Put("k" + std::to_string(i), i);
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_TRUE(cache.Erase("k3"));
  EXPECT_FALSE(cache.Erase("k3"));
  EXPECT_EQ(cache.size(), 5u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(cache.Peek("k" + std::to_string(i)), nullptr);
  }
}

// Charge each int its own value as its size (the LruCache tests' idiom).
ShardedLruCache<int>::SizeOf ValueAsBytes() {
  return [](const int& v) { return static_cast<std::size_t>(v); };
}

TEST(ShardedLruCacheTest, ByteBudgetBoundsResidentBytesGlobally) {
  // The byte budget is global, not per shard: 8 shards, but three 40-byte
  // entries anywhere must still trip the 100-byte bound.
  ShardedLruCache<int> cache(10, 8, 100, ValueAsBytes());
  cache.Put("a", 40);
  cache.Put("b", 40);
  EXPECT_EQ(cache.resident_bytes(), 80u);
  cache.Put("c", 40);  // 120 > 100: the globally-coldest entry goes
  EXPECT_LE(cache.resident_bytes(), 100u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Peek("a"), nullptr);  // "a" was oldest
  EXPECT_NE(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCacheTest, OversizePutRejectedAndResidentValueUntouched) {
  ShardedLruCache<int> cache(10, 4, 100, ValueAsBytes());
  cache.Put("a", 50);
  cache.Put("b", 30);
  cache.Put("huge", 101);  // bigger than the whole budget
  EXPECT_EQ(cache.stats().rejected_oversize, 1u);
  EXPECT_EQ(cache.Peek("huge"), nullptr);
  cache.Put("a", 500);  // rejected replacement: resident value survives
  EXPECT_EQ(cache.stats().rejected_oversize, 2u);
  const auto a = cache.Peek("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, 50);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.resident_bytes(), 80u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ShardedLruCacheTest, ShedBytesEvictsColdestFirstAndReportsFreed) {
  ShardedLruCache<int> cache(10, 4, 0, ValueAsBytes());
  cache.Put("cold", 30);
  cache.Put("warm", 30);
  cache.Put("hot", 30);
  ASSERT_NE(cache.Get("cold"), nullptr);  // now "warm" is coldest
  EXPECT_EQ(cache.ShedBytes(1), 30u);     // one eviction satisfies want=1
  EXPECT_EQ(cache.Peek("warm"), nullptr);
  EXPECT_NE(cache.Peek("cold"), nullptr);
  EXPECT_NE(cache.Peek("hot"), nullptr);
  // Asking for more than resident frees what exists and stops.
  EXPECT_EQ(cache.ShedBytes(1000), 60u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.ShedBytes(1), 0u);  // empty cache: nothing to free
}

TEST(ShardedLruCacheTest, GovernorBooksMatchResidentBytes) {
  store::MemoryGovernorOptions options;
  options.budget_bytes = 0;  // accounting only; interplay is covered by the
                             // store spill tests
  store::MemoryGovernor governor(options);
  {
    ShardedLruCache<int> cache(10, 4, 0, ValueAsBytes(), &governor);
    cache.Put("a", 40);
    cache.Put("b", 25);
    EXPECT_EQ(governor.charged(store::ChargeClass::kResult), 65u);
    cache.Put("a", 10);  // replacement recharges, never double-counts
    EXPECT_EQ(governor.charged(store::ChargeClass::kResult), 35u);
    cache.Erase("b");
    EXPECT_EQ(governor.charged(store::ChargeClass::kResult), 10u);
    cache.Put("c", 20);
    cache.Clear();
    EXPECT_EQ(governor.charged(store::ChargeClass::kResult), 0u);
    cache.Put("d", 15);
    EXPECT_EQ(governor.charged(store::ChargeClass::kResult), 15u);
  }
  // Destruction gives every outstanding byte back.
  EXPECT_EQ(governor.charged(store::ChargeClass::kResult), 0u);
}

TEST(ShardedLruCacheTest, ConcurrentMixedTrafficStaysWithinCapacity) {
  // TSan-covered hammer: concurrent Get/Put/Erase over overlapping keys.
  // The invariant checked here is bounded residency and internal
  // consistency; exact eviction order under races is unobservable.
  constexpr std::size_t kCapacity = 16;
  ShardedLruCache<int> cache(kCapacity, 8);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int thread_id = 0; thread_id < kThreads; ++thread_id) {
    threads.emplace_back([&cache, thread_id] {
      Rng rng(thread_id + 1);
      for (int step = 0; step < 2000; ++step) {
        const std::string key = "k" + std::to_string(rng.NextBounded(40));
        switch (rng.NextBounded(3)) {
          case 0:
            cache.Put(key, static_cast<int>(rng.NextBounded(100)));
            break;
          case 1:
            cache.Get(key);
            break;
          default:
            cache.Erase(key);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), kCapacity);
  std::size_t resident = 0;
  for (const CacheShardInfo& shard : cache.ShardInfos()) {
    resident += shard.size;
  }
  EXPECT_EQ(resident, cache.size());
}

}  // namespace
}  // namespace vulnds::serve
