// ServeServer: many concurrent sessions over one shared engine must behave
// like the same sessions run alone — byte-identical responses. The one
// nondeterministic byte in the protocol, the wall-clock time= token, is
// pinned by injecting a constant clock into the engine and the update
// manager, so transcripts compare EXACTLY — no token stripping. These tests
// run under the TSan CI job like the rest of the suite, so interleavings
// are also race-checked.

#include "serve/serve_server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "dyn/update_manager.h"
#include "graph/graph_io.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

std::string WriteTempGraph(const UncertainGraph& g, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteGraphFile(g, path, GraphFileFormat::kBinary).ok());
  return path;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Constant clock: every time= token renders as time=0, every transcript is
// bit-deterministic.
obs::ClockMicros ZeroClock() {
  return [] { return int64_t{0}; };
}

QueryEngineOptions FixedClockOptions() {
  QueryEngineOptions options;
  options.clock = ZeroClock();
  return options;
}

// One disjoint-graph session script: load, cold detect, cached detect,
// stage + commit, detect the new version.
std::string SessionScript(const std::string& name, const std::string& path) {
  return "load " + name + " " + path + "\n" +
         "detect " + name + " 3 BSRBK seed=7\n" +
         "detect " + name + " 3 BSRBK seed=7\n" +
         "addedge " + name + " 0 1 0.25\n" +
         "commit " + name + "\n" +
         "detect " + name + "@v1 3 BSRBK seed=7\n" +
         "quit\n";
}

TEST(ServeServerTest, ConcurrentDisjointSessionsMatchSerialTranscripts) {
  constexpr int kSessions = 4;
  std::vector<std::string> paths, scripts, baselines;
  for (int i = 0; i < kSessions; ++i) {
    const std::string name = "g" + std::to_string(i);
    paths.push_back(WriteTempGraph(
        testing::RandomSmallGraph(24, 0.2, 100 + i), "ssrv_" + name + ".snap"));
    scripts.push_back(SessionScript(name, paths.back()));
    // Baseline: the same script alone on a fresh engine.
    GraphCatalog catalog;
    QueryEngine engine(&catalog, FixedClockOptions());
    dyn::UpdateManager updates(&catalog, ZeroClock());
    std::istringstream in(scripts.back());
    std::ostringstream out;
    RunServeLoop(in, out, engine, &updates);
    baselines.push_back(out.str());
  }

  GraphCatalog catalog;
  QueryEngine engine(&catalog, FixedClockOptions());
  dyn::UpdateManager updates(&catalog, ZeroClock());
  ServeServer server(&engine, &updates);
  std::vector<std::istringstream> ins;
  std::vector<std::ostringstream> outs(kSessions);
  for (int i = 0; i < kSessions; ++i) ins.emplace_back(scripts[i]);
  for (int i = 0; i < kSessions; ++i) server.Submit(&ins[i], &outs[i]);
  server.Join();

  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(outs[i].str(), baselines[i])
        << "session " << i << " diverged from its single-session transcript";
  }
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.sessions_started, static_cast<std::size_t>(kSessions));
  EXPECT_EQ(stats.sessions_finished, static_cast<std::size_t>(kSessions));
  // 7 non-blank lines per script.
  EXPECT_EQ(stats.requests, static_cast<std::size_t>(7 * kSessions));
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.updates, static_cast<std::size_t>(2 * kSessions));
}

TEST(ServeServerTest, SameGraphConcurrentCachedQueriesAreBitIdentical) {
  GraphCatalog catalog;
  QueryEngine engine(&catalog, FixedClockOptions());
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(24, 0.2, 11)).ok());
  ServeServer server(&engine);

  // Baseline: one session answers the query once (cold), then cached.
  const std::string query = "detect g 3 BSRBK seed=5\n";
  std::istringstream warm_in(query + "quit\n");
  std::ostringstream warm_out;
  server.ServeStream(warm_in, warm_out);
  std::vector<std::string> baseline = Lines(warm_out.str());
  baseline.pop_back();  // "ok bye"
  // After warm-up every response must be the cached block.
  ASSERT_FALSE(baseline.empty());

  constexpr int kSessions = 6;
  constexpr int kRepeats = 10;
  std::string script;
  for (int r = 0; r < kRepeats; ++r) script += query;
  script += "quit\n";
  std::vector<std::istringstream> ins;
  std::vector<std::ostringstream> outs(kSessions);
  for (int i = 0; i < kSessions; ++i) ins.emplace_back(script);
  for (int i = 0; i < kSessions; ++i) server.Submit(&ins[i], &outs[i]);
  server.Join();

  // The cached block, with cached=1 in the header.
  std::vector<std::string> cached_block = baseline;
  ASSERT_NE(cached_block[0].find("cached=0"), std::string::npos);
  cached_block[0].replace(cached_block[0].find("cached=0"), 8, "cached=1");
  std::vector<std::string> expected;
  for (int r = 0; r < kRepeats; ++r) {
    expected.insert(expected.end(), cached_block.begin(), cached_block.end());
  }
  expected.push_back("ok bye");
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(Lines(outs[i].str()), expected) << "session " << i;
  }
}

TEST(ServeServerTest, InterleavedUpdatesOnSharedGraphApplyExactlyOnce) {
  // Two sessions stage one edge each on the SAME graph and both commit.
  // The staging area is shared, so which commit carries which ops is a
  // race — but every op lands exactly once: the ops summed over versions
  // must equal the two staged edges, whatever the interleaving.
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  dyn::UpdateManager updates(&catalog);
  ASSERT_TRUE(catalog.Put("g", testing::PaperExampleGraph(0.2)).ok());
  ServeServer server(&engine, &updates);

  std::istringstream in_a("addedge g 4 0 0.5\ncommit g\nquit\n");
  std::istringstream in_b("addedge g 4 1 0.5\ncommit g\nquit\n");
  std::ostringstream out_a, out_b;
  server.Submit(&in_a, &out_a);
  server.Submit(&in_b, &out_b);
  server.Join();

  std::istringstream check_in("versions g\nquit\n");
  std::ostringstream check_out;
  server.ServeStream(check_in, check_out);
  std::size_t total_ops = 0;
  std::istringstream lines(check_out.str());
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t pos = line.find(" ops=");
    if (pos == std::string::npos || line.rfind("v", 0) != 0) continue;
    total_ops += std::stoul(line.substr(pos + 5));
  }
  EXPECT_EQ(total_ops, 2u) << check_out.str();
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.sessions_finished, 3u);
  // Both addedges always succeed; a commit can race to an empty staging
  // area and answer err, so updates is 3 or 4 and errors the complement.
  EXPECT_GE(stats.updates, 3u);
  EXPECT_LE(stats.updates, 4u);
  EXPECT_EQ(stats.errors, 4u - stats.updates);
}

TEST(ServeServerTest, StatsVerbReportsServerAndShardDetail) {
  GraphCatalog catalog;
  QueryEngine engine(&catalog);
  ASSERT_TRUE(catalog.Put("g", testing::ChainGraph(0.3, 0.6)).ok());
  ServeServer server(&engine);
  std::istringstream in("detect g 2\nstats\nquit\n");
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("batched_queries=0"), std::string::npos) << text;
  EXPECT_NE(text.find("catalog_shards=8"), std::string::npos);
  EXPECT_NE(text.find("catalog_bytes="), std::string::npos);
  EXPECT_NE(text.find("cache_shards=8"), std::string::npos);
  EXPECT_NE(text.find("worlds_wasted="), std::string::npos);
  EXPECT_NE(text.find("waves_issued="), std::string::npos);
  EXPECT_NE(text.find("context_bytes="), std::string::npos);
  EXPECT_NE(text.find("shard 0 size="), std::string::npos);
  EXPECT_NE(text.find("server sessions_started=1 sessions_finished=0 "
                      "requests=2 errors=0 updates=0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve requests=2 errors=0 updates=0"),
            std::string::npos);
}

TEST(ServeServerTest, MetricsVerbRendersPrometheusExposition) {
  GraphCatalog catalog;
  QueryEngine engine(&catalog, FixedClockOptions());
  ASSERT_TRUE(catalog.Put("g", testing::ChainGraph(0.3, 0.6)).ok());
  ServeServer server(&engine);
  std::istringstream in("detect g 2\nmetrics\nquit\n");
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("ok metrics\n"), std::string::npos) << text;
  // Engine, cache, catalog and server families all flow through the one
  // registry the verb renders.
  EXPECT_NE(text.find("# TYPE vulnds_engine_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_engine_requests_total{verb=\"detect\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vulnds_engine_stage_micros histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_cache_misses_total{cache=\"detect\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_catalog_resident_graphs 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vulnds_server_sessions_started_total 1\n"),
            std::string::npos);
  // The block ends with the protocol terminator on its own line.
  EXPECT_NE(text.find("\n.\n"), std::string::npos);
}

TEST(ServeServerTest, SessionPoolFallsBackWhenItIsTheSamplingPool) {
  // Running blocking sessions on the engine's sampling pool would deadlock
  // (sessions wait for detect fan-out; fan-out waits for pool workers that
  // are all sessions). The server must detect the aliasing and use
  // dedicated threads; this test deadlocks (and times out) if it does not.
  ThreadPool pool(2);
  GraphCatalog catalog;
  QueryEngineOptions options;
  options.pool = &pool;
  QueryEngine engine(&catalog, options);
  ASSERT_TRUE(catalog.Put("g", testing::RandomSmallGraph(24, 0.2, 3)).ok());
  ServeServer server(&engine, nullptr, &pool);
  constexpr int kSessions = 4;  // more sessions than pool workers
  std::vector<std::istringstream> ins;
  std::vector<std::ostringstream> outs(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    ins.emplace_back("detect g 3 BSRBK seed=9\nquit\n");
  }
  for (int i = 0; i < kSessions; ++i) server.Submit(&ins[i], &outs[i]);
  server.Join();
  EXPECT_EQ(server.stats().sessions_finished,
            static_cast<std::size_t>(kSessions));
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_NE(outs[i].str().find("ok detect g "), std::string::npos);
  }
}

TEST(ServeServerTest, ConcurrentColdSameGraphQueriesBatchCorrectly) {
  // Distinct seeds on one graph issued concurrently: whichever requests
  // overlap share a context-lock acquisition (batched_queries counts them,
  // timing-dependent), and every response must match its single-session
  // counterpart computed on a fresh engine.
  constexpr int kSessions = 4;
  std::vector<std::string> scripts, baselines;
  const std::string path =
      WriteTempGraph(testing::RandomSmallGraph(24, 0.2, 42), "ssrv_batch.snap");
  for (int i = 0; i < kSessions; ++i) {
    scripts.push_back("detect shared 3 BSRBK seed=" + std::to_string(200 + i) +
                      "\nquit\n");
    GraphCatalog catalog;
    QueryEngine engine(&catalog, FixedClockOptions());
    ASSERT_TRUE(catalog.Load("shared", path).ok());
    std::istringstream in(scripts.back());
    std::ostringstream out;
    RunServeLoop(in, out, engine);
    baselines.push_back(out.str());
  }

  GraphCatalog catalog;
  QueryEngine engine(&catalog, FixedClockOptions());
  ASSERT_TRUE(catalog.Load("shared", path).ok());
  ServeServer server(&engine);
  std::vector<std::istringstream> ins;
  std::vector<std::ostringstream> outs(kSessions);
  for (int i = 0; i < kSessions; ++i) ins.emplace_back(scripts[i]);
  for (int i = 0; i < kSessions; ++i) server.Submit(&ins[i], &outs[i]);
  server.Join();
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(outs[i].str(), baselines[i]) << "session " << i;
  }
  EXPECT_EQ(engine.stats().detect_queries,
            static_cast<std::size_t>(kSessions));
}

}  // namespace
}  // namespace vulnds::serve
