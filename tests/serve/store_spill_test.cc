// Disk spill + byte governance through GraphCatalog and QueryEngine:
// budget ceilings, shed ordering, pins, and the bit-identity of results
// across a spill / page-back round trip.

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/graph_io.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "store/memory_governor.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

std::string WriteTempGraph(const UncertainGraph& g, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteGraphFile(g, path, GraphFileFormat::kBinary).ok());
  return path;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(StoreSpillTest, ColdSnapshotSpillsAndPagesBackBitIdentical) {
  const UncertainGraph g1 = testing::RandomSmallGraph(60, 0.2, 11);
  const UncertainGraph g2 = testing::RandomSmallGraph(60, 0.2, 22);
  const std::string p1 = WriteTempGraph(g1, "spill_a.snap");
  const std::string p2 = WriteTempGraph(g2, "spill_b.snap");
  const std::size_t b1 = EstimateGraphBytes(g1);
  const std::size_t b2 = EstimateGraphBytes(g2);

  // Budget fits either graph alone but never both: the second load must
  // push the first (colder) one out to disk.
  store::MemoryGovernorOptions governor_options;
  governor_options.budget_bytes = std::max(b1, b2) + 512;
  store::MemoryGovernor governor(governor_options);
  GraphCatalogOptions options;
  options.spill_dir = ::testing::TempDir() + "/spill_dir_a";
  options.governor = &governor;
  GraphCatalog catalog(options);

  ASSERT_TRUE(catalog.Load("g1", p1).ok());
  const auto before = catalog.Get("g1");
  ASSERT_NE(before, nullptr);
  const uint64_t uid_before = before->uid;

  ASSERT_TRUE(catalog.Load("g2", p2).ok());
  EXPECT_LE(governor.total_charged(), governor_options.budget_bytes);
  EXPECT_EQ(catalog.spilled_count(), 1u);
  EXPECT_GT(catalog.spilled_bytes(), 0u);
  EXPECT_EQ(catalog.Get("g1"), nullptr);  // not resident...
  EXPECT_TRUE(catalog.Contains("g1"));    // ...but not gone either
  EXPECT_EQ(catalog.stats().spills, 1u);

  // Page back on demand; identity (uid) and content must survive.
  Result<std::shared_ptr<CatalogEntry>> paged = catalog.GetOrLoad("g1");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_NE(*paged, nullptr);
  EXPECT_EQ((*paged)->uid, uid_before);
  EXPECT_EQ(catalog.stats().page_ins, 1u);
  const std::string round_trip =
      ::testing::TempDir() + "/spill_round_trip.snap";
  ASSERT_TRUE(
      WriteGraphFile((*paged)->graph, round_trip, GraphFileFormat::kBinary)
          .ok());
  EXPECT_EQ(FileBytes(round_trip), FileBytes(p1));  // bit-identical
}

TEST(StoreSpillTest, ContextsShedBeforeSnapshots) {
  const UncertainGraph g1 = testing::RandomSmallGraph(50, 0.2, 33);
  const UncertainGraph g2 = testing::RandomSmallGraph(50, 0.2, 44);
  const std::size_t total =
      EstimateGraphBytes(g1) + EstimateGraphBytes(g2);

  store::MemoryGovernorOptions governor_options;
  governor_options.budget_bytes = total + 256;
  store::MemoryGovernor governor(governor_options);
  GraphCatalogOptions options;
  options.spill_dir = ::testing::TempDir() + "/spill_dir_b";
  options.governor = &governor;
  GraphCatalog catalog(options);
  ASSERT_TRUE(
      catalog.Load("g1", WriteTempGraph(g1, "spill_ctx_a.snap")).ok());
  ASSERT_TRUE(
      catalog.Load("g2", WriteTempGraph(g2, "spill_ctx_b.snap")).ok());

  // Charge 1000 context bytes against g1, overflowing the budget by ~744:
  // the shed loop must reclaim them from the context class and leave both
  // snapshots resident.
  const auto entry = catalog.Get("g1");
  ASSERT_NE(entry, nullptr);
  entry->charged_context_bytes.store(1000);
  governor.Charge(store::ChargeClass::kContext, 1000);

  EXPECT_LE(governor.total_charged(), governor_options.budget_bytes);
  EXPECT_EQ(governor.charged(store::ChargeClass::kContext), 0u);
  EXPECT_EQ(entry->charged_context_bytes.load(), 0u);
  EXPECT_EQ(catalog.spilled_count(), 0u);
  EXPECT_EQ(catalog.stats().spills, 0u);
  EXPECT_NE(catalog.Get("g1"), nullptr);
  EXPECT_NE(catalog.Get("g2"), nullptr);
  EXPECT_GE(governor.sheds(store::ChargeClass::kContext), 1u);
}

TEST(StoreSpillTest, PinnedSnapshotsAreNeverSpilled) {
  const UncertainGraph g1 = testing::RandomSmallGraph(60, 0.2, 55);
  const UncertainGraph g2 = testing::RandomSmallGraph(60, 0.2, 66);
  const std::size_t b1 = EstimateGraphBytes(g1);
  const std::size_t b2 = EstimateGraphBytes(g2);

  store::MemoryGovernorOptions governor_options;
  governor_options.budget_bytes = b1 + b2 + 512;  // both fit, barely
  store::MemoryGovernor governor(governor_options);
  GraphCatalogOptions options;
  options.spill_dir = ::testing::TempDir() + "/spill_dir_c";
  options.governor = &governor;
  GraphCatalog catalog(options);

  ASSERT_TRUE(
      catalog.Load("g1", WriteTempGraph(g1, "spill_pin_a.snap")).ok());
  ASSERT_TRUE(
      catalog.Load("g2", WriteTempGraph(g2, "spill_pin_b.snap")).ok());
  ScopedEntryPin pin1(catalog.Get("g1"));
  ScopedEntryPin pin2(catalog.Get("g2"));
  ASSERT_TRUE(pin1);
  ASSERT_TRUE(pin2);

  // Synthetic pressure with every snapshot pinned: the budget is a target,
  // not a fence — the shed loop must give up cleanly, spilling nothing.
  governor.Charge(store::ChargeClass::kSnapshot, 1024);
  EXPECT_EQ(catalog.spilled_count(), 0u);
  EXPECT_EQ(catalog.stats().spills, 0u);
  EXPECT_NE(catalog.Get("g1"), nullptr);
  EXPECT_NE(catalog.Get("g2"), nullptr);
  EXPECT_GT(governor.total_charged(), governor_options.budget_bytes);

  // Releasing one pin gives the shedder a victim: exactly the unpinned
  // snapshot goes; the still-pinned one stays resident.
  pin1.Release();
  governor.MaybeShed();
  EXPECT_LE(governor.total_charged(), governor_options.budget_bytes);
  EXPECT_EQ(catalog.spilled_count(), 1u);
  EXPECT_EQ(catalog.Get("g1"), nullptr);
  EXPECT_TRUE(catalog.Contains("g1"));
  EXPECT_NE(catalog.Get("g2"), nullptr);
  governor.Discharge(store::ChargeClass::kSnapshot, 1024);
}

TEST(StoreSpillTest, DetectIsBitIdenticalAndStaysCachedAcrossSpill) {
  const UncertainGraph g1 = testing::RandomSmallGraph(40, 0.15, 77);
  const UncertainGraph g2 = testing::RandomSmallGraph(40, 0.15, 88);
  const std::string p1 = WriteTempGraph(g1, "spill_eng_a.snap");
  const std::string p2 = WriteTempGraph(g2, "spill_eng_b.snap");

  store::MemoryGovernorOptions governor_options;
  // Room for one graph plus its warm context and cached results, never two
  // graphs — loading the second must spill the first.
  governor_options.budget_bytes =
      std::max(EstimateGraphBytes(g1), EstimateGraphBytes(g2)) +
      EstimateGraphBytes(g1) / 2;
  store::MemoryGovernor governor(governor_options);
  GraphCatalogOptions catalog_options;
  catalog_options.spill_dir = ::testing::TempDir() + "/spill_dir_d";
  catalog_options.governor = &governor;
  GraphCatalog catalog(catalog_options);
  QueryEngine engine(&catalog);

  ASSERT_TRUE(catalog.Load("g1", p1).ok());
  DetectorOptions options;
  options.k = 3;
  Result<DetectResponse> first = engine.Detect("g1", options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);

  ASSERT_TRUE(catalog.Load("g2", p2).ok());
  ASSERT_TRUE(engine.Detect("g2", options).ok());
  governor.MaybeShed();
  EXPECT_EQ(catalog.Get("g1"), nullptr) << "g1 should have been spilled";

  // The uid survives the round trip, so this both pages the snapshot back
  // AND hits the result cache; the answer is the cached (hence bit-equal)
  // original.
  Result<DetectResponse> second = engine.Detect("g1", options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(first->result.topk, second->result.topk);
  ASSERT_EQ(first->result.scores.size(), second->result.scores.size());
  for (std::size_t i = 0; i < first->result.scores.size(); ++i) {
    EXPECT_EQ(first->result.scores[i], second->result.scores[i]);
  }
  EXPECT_GE(catalog.stats().page_ins, 1u);
}

// Budget ceiling property through the full catalog stack: random touches
// over more graphs than fit keep paging in and spilling out; after every
// operation the governor's books balance under the budget (everything is
// unpinned, so the shed loop can always make room).
TEST(StoreSpillTest, ChargedBytesStayUnderBudgetAcrossRandomTraffic) {
  store::MemoryGovernorOptions governor_options;
  GraphCatalogOptions options;
  options.spill_dir = ::testing::TempDir() + "/spill_dir_e";

  std::vector<std::string> names;
  std::vector<std::string> paths;
  std::size_t max_bytes = 0;
  for (int i = 0; i < 6; ++i) {
    const UncertainGraph g =
        testing::RandomSmallGraph(40 + 5 * i, 0.2, 100 + i);
    max_bytes = std::max(max_bytes, EstimateGraphBytes(g));
    names.push_back("g" + std::to_string(i));
    paths.push_back(
        WriteTempGraph(g, "spill_rand_" + std::to_string(i) + ".snap"));
  }
  // Roughly two graphs fit at a time.
  governor_options.budget_bytes = 2 * max_bytes + 1024;
  store::MemoryGovernor governor(governor_options);
  options.governor = &governor;
  GraphCatalog catalog(options);
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(catalog.Load(names[i], paths[i]).ok());
    ASSERT_LE(governor.total_charged(), governor_options.budget_bytes);
  }

  Rng rng(7);
  for (int step = 0; step < 300; ++step) {
    const std::string& name = names[rng.NextBounded(names.size())];
    Result<std::shared_ptr<CatalogEntry>> entry = catalog.GetOrLoad(name);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    ASSERT_NE(*entry, nullptr) << name << " vanished at step " << step;
    ASSERT_LE(governor.total_charged(), governor_options.budget_bytes)
        << "step " << step;
  }
  // Every name is still reachable (resident or spilled) — shedding parks
  // graphs, it never loses them.
  for (const std::string& name : names) EXPECT_TRUE(catalog.Contains(name));
}

// Races spill/page-back against concurrent readers; run under TSan this
// checks the catalog/governor locking discipline.
TEST(StoreSpillTest, ConcurrentGetOrLoadUnderPressureIsSafe) {
  const UncertainGraph g1 = testing::RandomSmallGraph(50, 0.2, 201);
  const UncertainGraph g2 = testing::RandomSmallGraph(50, 0.2, 202);
  const UncertainGraph g3 = testing::RandomSmallGraph(50, 0.2, 203);
  store::MemoryGovernorOptions governor_options;
  governor_options.budget_bytes = EstimateGraphBytes(g1) +
                                  EstimateGraphBytes(g2) / 2;  // ~1.5 graphs
  store::MemoryGovernor governor(governor_options);
  GraphCatalogOptions options;
  options.spill_dir = ::testing::TempDir() + "/spill_dir_f";
  options.governor = &governor;
  GraphCatalog catalog(options);
  ASSERT_TRUE(catalog.Load("c1", WriteTempGraph(g1, "spill_mt_a.snap")).ok());
  ASSERT_TRUE(catalog.Load("c2", WriteTempGraph(g2, "spill_mt_b.snap")).ok());
  ASSERT_TRUE(catalog.Load("c3", WriteTempGraph(g3, "spill_mt_c.snap")).ok());

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      const std::string mine = "c" + std::to_string(1 + t % 3);
      for (int i = 0; i < 50; ++i) {
        Result<std::shared_ptr<CatalogEntry>> entry = catalog.GetOrLoad(mine);
        ASSERT_TRUE(entry.ok());
        ASSERT_NE(*entry, nullptr);
        ScopedEntryPin pin(*entry);
        // Touch the graph while pinned; a spill must never yank it.
        ASSERT_GT((*entry)->graph.num_edges(), 0u);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_TRUE(catalog.Contains("c1"));
  EXPECT_TRUE(catalog.Contains("c2"));
  EXPECT_TRUE(catalog.Contains("c3"));
}

}  // namespace
}  // namespace vulnds::serve
