#include "serve/protocol.h"

#include <gtest/gtest.h>

namespace vulnds::serve {
namespace {

TEST(ProtocolTest, BlankAndCommentLinesAreNone) {
  EXPECT_EQ(ParseServeRequest("")->command, ServeCommand::kNone);
  EXPECT_EQ(ParseServeRequest("   \t ")->command, ServeCommand::kNone);
  EXPECT_EQ(ParseServeRequest("# a comment")->command, ServeCommand::kNone);
}

TEST(ProtocolTest, Load) {
  Result<ServeRequest> r = ParseServeRequest("load mygraph /tmp/g.snap");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->command, ServeCommand::kLoad);
  EXPECT_EQ(r->name, "mygraph");
  EXPECT_EQ(r->path, "/tmp/g.snap");
}

TEST(ProtocolTest, SaveDefaultsToBinary) {
  Result<ServeRequest> r = ParseServeRequest("save g /tmp/out.snap");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->command, ServeCommand::kSave);
  EXPECT_EQ(r->format, GraphFileFormat::kBinary);
  r = ParseServeRequest("save g /tmp/out.graph text");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->format, GraphFileFormat::kText);
  EXPECT_FALSE(ParseServeRequest("save g /tmp/out.graph xml").ok());
}

TEST(ProtocolTest, DetectMinimal) {
  Result<ServeRequest> r = ParseServeRequest("detect g 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->command, ServeCommand::kDetect);
  EXPECT_EQ(r->name, "g");
  EXPECT_EQ(r->options.k, 5u);
  EXPECT_EQ(r->options.method, Method::kBsrbk);  // default
}

TEST(ProtocolTest, DetectWithMethodAndFlags) {
  Result<ServeRequest> r = ParseServeRequest(
      "detect g 3 BSR eps=0.2 delta=0.05 seed=9 order=3 bk=8 samples=500");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->options.method, Method::kBsr);
  EXPECT_EQ(r->options.k, 3u);
  EXPECT_DOUBLE_EQ(r->options.eps, 0.2);
  EXPECT_DOUBLE_EQ(r->options.delta, 0.05);
  EXPECT_EQ(r->options.seed, 9u);
  EXPECT_EQ(r->options.bound_order, 3);
  EXPECT_EQ(r->options.bk, 8);
  EXPECT_EQ(r->options.naive_samples, 500u);
}

TEST(ProtocolTest, DetectMethodAsFlag) {
  Result<ServeRequest> r = ParseServeRequest("detect g 2 method=sn");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->options.method, Method::kSampleNaive);
}

TEST(ProtocolTest, DetectRejectsIntOverflowInsteadOfTruncating) {
  // 4294967298 == 2^32 + 2: a static_cast<int> would silently run order=2.
  EXPECT_FALSE(ParseServeRequest("detect g 5 order=4294967298").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 5 bk=4294967298").ok());
}

TEST(ProtocolTest, DetectRejectsGarbage) {
  EXPECT_FALSE(ParseServeRequest("detect g").ok());
  EXPECT_FALSE(ParseServeRequest("detect g abc").ok());  // k must be numeric
  EXPECT_FALSE(ParseServeRequest("detect g 3 NOPE").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 3 eps=zero").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 3 wat=1").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 3 eps=").ok());
  EXPECT_FALSE(ParseServeRequest("detect g -1").ok());
}

TEST(ProtocolTest, Truth) {
  Result<ServeRequest> r = ParseServeRequest("truth g 10 5000 123");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->command, ServeCommand::kTruth);
  EXPECT_EQ(r->k, 10u);
  EXPECT_EQ(r->samples, 5000u);
  EXPECT_EQ(r->seed, 123u);
  // Defaults.
  r = ParseServeRequest("truth g 10");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->samples, 0u);  // 0 = paper default, resolved by the loop
  EXPECT_FALSE(ParseServeRequest("truth g ten").ok());
}

TEST(ProtocolTest, StatsCatalogEvictQuit) {
  EXPECT_EQ(ParseServeRequest("stats")->command, ServeCommand::kStats);
  EXPECT_EQ(ParseServeRequest("stats g")->name, "g");
  EXPECT_EQ(ParseServeRequest("catalog")->command, ServeCommand::kCatalog);
  EXPECT_EQ(ParseServeRequest("evict g")->command, ServeCommand::kEvict);
  EXPECT_EQ(ParseServeRequest("quit")->command, ServeCommand::kQuit);
  EXPECT_EQ(ParseServeRequest("exit")->command, ServeCommand::kQuit);
}

TEST(ProtocolTest, Shutdown) {
  EXPECT_EQ(ParseServeRequest("shutdown")->command, ServeCommand::kShutdown);
  EXPECT_EQ(ServeCommandName(ServeCommand::kShutdown),
            std::string("shutdown"));
  EXPECT_FALSE(ParseServeRequest("shutdown now").ok());
}

TEST(ProtocolTest, UpdateVerbs) {
  Result<ServeRequest> add = ParseServeRequest("addedge g 3 7 0.25");
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(add->command, ServeCommand::kAddEdge);
  EXPECT_EQ(add->name, "g");
  EXPECT_EQ(add->src, 3u);
  EXPECT_EQ(add->dst, 7u);
  EXPECT_EQ(add->prob, 0.25);

  Result<ServeRequest> del = ParseServeRequest("deledge g 3 7");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->command, ServeCommand::kDelEdge);
  EXPECT_EQ(del->src, 3u);
  EXPECT_EQ(del->dst, 7u);

  Result<ServeRequest> set = ParseServeRequest("SETPROB g 3 7 0.75");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->command, ServeCommand::kSetProb);
  EXPECT_EQ(set->prob, 0.75);

  EXPECT_EQ(ParseServeRequest("commit g")->command, ServeCommand::kCommit);
  EXPECT_EQ(ParseServeRequest("versions g")->command, ServeCommand::kVersions);
  EXPECT_EQ(ParseServeRequest("versions g")->name, "g");
}

TEST(ProtocolTest, UpdateVerbsRejectMalformedArguments) {
  EXPECT_FALSE(ParseServeRequest("addedge g 3 7").ok());       // missing prob
  EXPECT_FALSE(ParseServeRequest("addedge g 3 7 0.2 x").ok()); // extra token
  EXPECT_FALSE(ParseServeRequest("addedge g -1 7 0.2").ok());  // negative id
  EXPECT_FALSE(ParseServeRequest("addedge g a 7 0.2").ok());   // not a number
  EXPECT_FALSE(ParseServeRequest("addedge g 3 7 nope").ok());  // bad prob
  EXPECT_FALSE(ParseServeRequest("addedge g 5000000000 7 0.2").ok())
      << "node ids beyond 32 bits must be rejected, not truncated";
  EXPECT_FALSE(ParseServeRequest("deledge g 3").ok());
  EXPECT_FALSE(ParseServeRequest("commit").ok());
  EXPECT_FALSE(ParseServeRequest("commit g extra").ok());
  EXPECT_FALSE(ParseServeRequest("versions").ok());
}

TEST(ProtocolTest, DetectRejectsNonFiniteNumbers) {
  // "nan"/"inf" parse as doubles under from_chars and every comparison with
  // NaN is false, so these must die in ParseDouble, long before the
  // open-interval option checks run.
  EXPECT_FALSE(ParseServeRequest("detect g 1 eps=nan").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 1 eps=inf").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 1 delta=nan").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 1 delta=-inf").ok());
  EXPECT_FALSE(ParseServeRequest("addedge g 0 1 nan").ok());
  EXPECT_FALSE(ParseServeRequest("setprob g 0 1 inf").ok());
}

TEST(ProtocolTest, DetectThreadsFlag) {
  Result<ServeRequest> r = ParseServeRequest("detect g 2 bsrbk threads=4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->options.threads, 4u);
  EXPECT_EQ(ParseServeRequest("detect g 2")->options.threads, 0u);
  EXPECT_FALSE(ParseServeRequest("detect g 2 threads=four").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 2 threads=-1").ok());
}

TEST(ProtocolTest, DetectWaveFlag) {
  EXPECT_EQ(ParseServeRequest("detect g 2")->options.wave_mode,
            WaveMode::kAdaptive);
  Result<ServeRequest> adaptive =
      ParseServeRequest("detect g 2 bsrbk wave=adaptive");
  ASSERT_TRUE(adaptive.ok());
  EXPECT_EQ(adaptive->options.wave_mode, WaveMode::kAdaptive);
  EXPECT_EQ(adaptive->options.wave_size, 0u);
  Result<ServeRequest> fixed = ParseServeRequest("detect g 2 wave=fixed");
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->options.wave_mode, WaveMode::kFixed);
  EXPECT_EQ(fixed->options.wave_size, 0u);
  Result<ServeRequest> sized = ParseServeRequest("detect g 2 wave=FIXED:250");
  ASSERT_TRUE(sized.ok());
  EXPECT_EQ(sized->options.wave_mode, WaveMode::kFixed);
  EXPECT_EQ(sized->options.wave_size, 250u);
  EXPECT_FALSE(ParseServeRequest("detect g 2 wave=maybe").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 2 wave=fixed:abc").ok());
  EXPECT_FALSE(ParseServeRequest("detect g 2 wave=fixed:-3").ok());
}

TEST(ProtocolTest, UnknownVerbRejected) {
  EXPECT_EQ(ParseServeRequest("frobnicate g").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ArityErrors) {
  EXPECT_FALSE(ParseServeRequest("load g").ok());
  EXPECT_FALSE(ParseServeRequest("load g p extra").ok());
  EXPECT_FALSE(ParseServeRequest("evict").ok());
  EXPECT_FALSE(ParseServeRequest("quit now").ok());
}

TEST(ProtocolTest, CaseInsensitiveVerbsAndMethods) {
  EXPECT_EQ(ParseServeRequest("DETECT g 2 bsrbk")->command,
            ServeCommand::kDetect);
  EXPECT_EQ(ParseServeRequest("Load g /p")->command, ServeCommand::kLoad);
}

TEST(ProtocolTest, StripWallClockTokensPreservesEveryOtherByte) {
  // Mid-line token: only " time=<v>" goes; spacing elsewhere untouched.
  EXPECT_EQ(StripWallClockTokens(
                "ok detect g method=BSRBK cached=1 time=3.1e-06 samples=16"),
            "ok detect g method=BSRBK cached=1 samples=16");
  // Token at end of line (commit responses).
  EXPECT_EQ(StripWallClockTokens("ok committed g@v1 ops=3 time=0.0002"),
            "ok committed g@v1 ops=3");
  // Token at start of line.
  EXPECT_EQ(StripWallClockTokens("time=1.5 rest"), "rest");
  // Substrings of larger tokens are not wall-clock tokens.
  EXPECT_EQ(StripWallClockTokens("uptime=5 x"), "uptime=5 x");
  // Lines without the token — including payload rows — pass through
  // byte-identical, double spaces and all.
  EXPECT_EQ(StripWallClockTokens("1 46 0.999  trailing"),
            "1 46 0.999  trailing");
  EXPECT_EQ(StripWallClockTokens(""), "");
}

}  // namespace
}  // namespace vulnds::serve
