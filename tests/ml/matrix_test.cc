#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace vulnds {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
}

TEST(MatrixTest, RowSpanViewsStorage) {
  Matrix m(2, 2);
  m.At(1, 0) = 3.0;
  m.At(1, 1) = 4.0;
  const auto row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  double v = 1.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a.At(i, j) = v++;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b.At(i, j) = v++;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3);
  m.At(0, 2) = 5.0;
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 5.0);
}

TEST(MatrixTest, AppendRows) {
  Matrix a(1, 2);
  a.At(0, 0) = 1.0;
  Matrix b(2, 2);
  b.At(1, 1) = 9.0;
  a.AppendRows(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a.At(2, 1), 9.0);
  // Appending into an empty matrix adopts the shape.
  Matrix empty;
  empty.AppendRows(b);
  EXPECT_EQ(empty.rows(), 2u);
  EXPECT_EQ(empty.cols(), 2u);
}

TEST(MatrixTest, ConcatColumns) {
  Matrix a(2, 1, 1.0);
  Matrix b(2, 2, 2.0);
  const Matrix c = a.ConcatColumns(b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(0, 2), 2.0);
}

TEST(MatrixTest, SelectRows) {
  Matrix m(3, 2);
  m.At(0, 0) = 1.0;
  m.At(2, 0) = 3.0;
  const std::vector<std::size_t> idx = {2, 0};
  const Matrix s = m.SelectRows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 1.0);
}

}  // namespace
}  // namespace vulnds
