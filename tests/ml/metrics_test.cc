#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vulnds {
namespace {

TEST(AucTest, PerfectRanking) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<double> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, labels), 1.0);
}

TEST(AucTest, InvertedRanking) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<double> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, labels), 0.0);
}

TEST(AucTest, HandComputedPartial) {
  // positives at scores {0.4, 0.8}, negatives at {0.2, 0.6}:
  // pairs won: (0.4>0.2)=1, (0.4>0.6)=0, (0.8>0.2)=1, (0.8>0.6)=1 -> 3/4.
  const std::vector<double> scores = {0.4, 0.8, 0.2, 0.6};
  const std::vector<double> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, labels), 0.75);
}

TEST(AucTest, TiesGetHalfCredit) {
  const std::vector<double> scores = {0.5, 0.5};
  const std::vector<double> labels = {1, 0};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, labels), 0.5);
}

TEST(AucTest, SingleClassIsHalf) {
  const std::vector<double> scores = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, std::vector<double>{1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, std::vector<double>{0, 0}), 0.5);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  const std::vector<double> scores = {0.1, 0.7, 0.3, 0.9};
  std::vector<double> scaled = scores;
  for (auto& s : scaled) s = s * 100.0 - 5.0;
  const std::vector<double> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, labels), AreaUnderRoc(scaled, labels));
}

TEST(LogLossTest, PerfectAndWorst) {
  const std::vector<double> labels = {1, 0};
  EXPECT_NEAR(LogLoss(std::vector<double>{1.0, 0.0}, labels), 0.0, 1e-9);
  // Confidently wrong is heavily penalized but finite (clamped).
  EXPECT_GT(LogLoss(std::vector<double>{0.0, 1.0}, labels), 20.0);
}

TEST(LogLossTest, UniformPrediction) {
  const std::vector<double> labels = {1, 0, 1, 0};
  const std::vector<double> half(4, 0.5);
  EXPECT_NEAR(LogLoss(half, labels), std::log(2.0), 1e-12);
}

TEST(AccuracyTest, ThresholdAtHalf) {
  const std::vector<double> probs = {0.6, 0.4, 0.5, 0.1};
  const std::vector<double> labels = {1, 0, 1, 1};
  // predictions: 1, 0, 1, 0 -> 3 correct of 4.
  EXPECT_DOUBLE_EQ(Accuracy(probs, labels), 0.75);
}

TEST(AccuracyTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(LogLoss({}, {}), 0.0);
}

}  // namespace
}  // namespace vulnds
