#include "ml/scaler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vulnds {
namespace {

TEST(ScalerTest, ZeroMeanUnitVariance) {
  Matrix x(4, 2);
  const double col0[] = {1.0, 2.0, 3.0, 4.0};
  const double col1[] = {10.0, 10.0, 20.0, 20.0};
  for (std::size_t i = 0; i < 4; ++i) {
    x.At(i, 0) = col0[i];
    x.At(i, 1) = col1[i];
  }
  StandardScaler scaler;
  const Matrix t = scaler.FitTransform(x);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i < 4; ++i) mean += t.At(i, j);
    mean /= 4.0;
    for (std::size_t i = 0; i < 4; ++i) {
      var += (t.At(i, j) - mean) * (t.At(i, j) - mean);
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(ScalerTest, ConstantColumnDoesNotExplode) {
  Matrix x(3, 1, 5.0);
  StandardScaler scaler;
  const Matrix t = scaler.FitTransform(x);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(t.At(i, 0)));
    EXPECT_NEAR(t.At(i, 0), 0.0, 1e-9);
  }
}

TEST(ScalerTest, TransformUsesTrainStatistics) {
  Matrix train(2, 1);
  train.At(0, 0) = 0.0;
  train.At(1, 0) = 2.0;  // mean 1, std 1
  StandardScaler scaler;
  scaler.Fit(train);
  Matrix test(1, 1);
  test.At(0, 0) = 3.0;
  const Matrix t = scaler.Transform(test);
  EXPECT_NEAR(t.At(0, 0), 2.0, 1e-12);  // (3 - 1) / 1
}

TEST(ScalerTest, ExposesFittedStats) {
  Matrix x(2, 1);
  x.At(0, 0) = 2.0;
  x.At(1, 0) = 4.0;
  StandardScaler scaler;
  scaler.Fit(x);
  ASSERT_EQ(scaler.means().size(), 1u);
  EXPECT_DOUBLE_EQ(scaler.means()[0], 3.0);
  EXPECT_DOUBLE_EQ(scaler.stds()[0], 1.0);
}

}  // namespace
}  // namespace vulnds
