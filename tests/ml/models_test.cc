// Model training tests: every classifier must learn its designated task
// well above chance, deterministically.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/conv.h"
#include "ml/gbdt.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/scaler.h"
#include "ml/wide_deep.h"

namespace vulnds {
namespace {

// Linearly separable blob data in 2D.
void MakeLinearData(std::size_t n, uint64_t seed, Matrix* x,
                    std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.Bernoulli(0.5);
    x->At(i, 0) = rng.NextGaussian() + (positive ? 1.2 : -1.2);
    x->At(i, 1) = rng.NextGaussian() + (positive ? 0.8 : -0.8);
    (*y)[i] = positive ? 1.0 : 0.0;
  }
}

// XOR-structured data: linearly inseparable, learnable by MLP/GBDT.
void MakeXorData(std::size_t n, uint64_t seed, Matrix* x,
                 std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.NextGaussian();
    const double b = rng.NextGaussian();
    x->At(i, 0) = a;
    x->At(i, 1) = b;
    (*y)[i] = (a * b > 0) ? 1.0 : 0.0;
  }
}

TEST(LogisticTest, ValidatesInput) {
  LogisticRegression model;
  Matrix empty;
  EXPECT_FALSE(model.Fit(empty, {}).ok());
  Matrix x(2, 1);
  EXPECT_FALSE(model.Fit(x, {1.0}).ok());  // label count mismatch
}

TEST(LogisticTest, LearnsSeparableData) {
  Matrix x;
  std::vector<double> y;
  MakeLinearData(600, 1, &x, &y);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const std::vector<double> p = model.PredictProba(x);
  EXPECT_GT(AreaUnderRoc(p, y), 0.93);
  EXPECT_GT(Accuracy(p, y), 0.85);
}

TEST(LogisticTest, DeterministicTraining) {
  Matrix x;
  std::vector<double> y;
  MakeLinearData(200, 2, &x, &y);
  LogisticRegression a;
  LogisticRegression b;
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(LogisticTest, CannotLearnXor) {
  // Sanity: a linear model stays near chance on XOR, proving the MLP test
  // below is meaningful.
  Matrix x;
  std::vector<double> y;
  MakeXorData(800, 3, &x, &y);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(AreaUnderRoc(model.PredictProba(x), y), 0.65);
}

TEST(SigmoidTest, StableAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(Sigmoid(-1e308)));
}

TEST(MlpTest, LearnsXor) {
  Matrix x;
  std::vector<double> y;
  MakeXorData(800, 4, &x, &y);
  TrainOptions o;
  o.epochs = 120;
  o.learning_rate = 0.01;
  o.seed = 5;
  Mlp model({16, 8}, o);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GT(AreaUnderRoc(model.PredictProba(x), y), 0.9);
}

TEST(MlpTest, EmptyHiddenActsLikeLogistic) {
  Matrix x;
  std::vector<double> y;
  MakeLinearData(400, 6, &x, &y);
  Mlp model({}, TrainOptions{});
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GT(AreaUnderRoc(model.PredictProba(x), y), 0.9);
}

TEST(MlpTest, LogitMatchesProba) {
  Matrix x;
  std::vector<double> y;
  MakeLinearData(100, 7, &x, &y);
  Mlp model({8}, TrainOptions{});
  ASSERT_TRUE(model.Fit(x, y).ok());
  const std::vector<double> logits = model.PredictLogit(x);
  const std::vector<double> probs = model.PredictProba(x);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(probs[i], Sigmoid(logits[i]), 1e-12);
  }
}

TEST(WideDeepTest, BeatsChanceOnXorAndLinear) {
  Matrix x;
  std::vector<double> y;
  MakeXorData(800, 8, &x, &y);
  TrainOptions o;
  o.epochs = 120;
  o.learning_rate = 0.01;
  WideDeep model({16, 8}, o);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GT(AreaUnderRoc(model.PredictProba(x), y), 0.85);
}

TEST(GbdtTest, ValidatesInput) {
  Gbdt model;
  Matrix empty;
  EXPECT_FALSE(model.Fit(empty, {}).ok());
}

TEST(GbdtTest, LearnsXor) {
  Matrix x;
  std::vector<double> y;
  MakeXorData(800, 9, &x, &y);
  Gbdt model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_EQ(model.num_trees(), 60u);
  EXPECT_GT(AreaUnderRoc(model.PredictProba(x), y), 0.92);
}

TEST(GbdtTest, MonotoneStepFunction) {
  // One feature, threshold rule: y = x > 0. A single stump suffices.
  const std::size_t n = 200;
  Matrix x(n, 1);
  std::vector<double> y(n);
  Rng rng(10);
  for (std::size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextGaussian();
    y[i] = x.At(i, 0) > 0 ? 1.0 : 0.0;
  }
  GbdtOptions o;
  o.num_trees = 20;
  o.max_depth = 1;
  Gbdt model(o);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GT(Accuracy(model.PredictProba(x), y), 0.97);
}

TEST(CnnMaxTest, ValidatesShape) {
  CnnMaxOptions o;
  o.channels = 2;
  o.time_steps = 6;
  CnnMax model(o);
  Matrix wrong(4, 5);
  EXPECT_FALSE(model.Fit(wrong, {1, 0, 1, 0}).ok());
}

TEST(CnnMaxTest, DetectsTemporalSpike) {
  // Class 1 sequences contain a 3-step spike somewhere; class 0 are noise.
  // Max pooling over a conv filter is exactly the right inductive bias.
  const std::size_t n = 600;
  const std::size_t time = 12;
  Rng rng(11);
  Matrix x(n, time);  // single channel
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < time; ++t) {
      x.At(i, t) = 0.3 * rng.NextGaussian();
    }
    if (rng.Bernoulli(0.5)) {
      y[i] = 1.0;
      const std::size_t at = rng.NextBounded(time - 2);
      for (std::size_t d = 0; d < 3; ++d) x.At(i, at + d) += 2.0;
    }
  }
  CnnMaxOptions o;
  o.channels = 1;
  o.time_steps = time;
  o.filters = 4;
  o.kernel = 3;
  o.train.epochs = 60;
  o.train.learning_rate = 0.05;
  CnnMax model(o);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GT(AreaUnderRoc(model.PredictProba(x), y), 0.9);
}

}  // namespace
}  // namespace vulnds
