#include "ml/graph_features.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace vulnds {
namespace {

Matrix OneHotFeatures(std::size_t n) {
  Matrix f(n, n);
  for (std::size_t i = 0; i < n; ++i) f.At(i, i) = 1.0;
  return f;
}

TEST(NeighborMeanTest, AveragesInNeighbors) {
  UncertainGraph g = testing::ChainGraph(0.1, 0.5);  // 0 -> 1 -> 2
  Matrix f(3, 1);
  f.At(0, 0) = 6.0;
  f.At(1, 0) = 4.0;
  f.At(2, 0) = 2.0;
  const Matrix out = NeighborMeanFeatures(g, f);
  EXPECT_EQ(out.cols(), 3u);  // feature + in-degree + out-degree
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);  // no in-neighbors
  EXPECT_DOUBLE_EQ(out.At(1, 0), 6.0);  // mean of {0}
  EXPECT_DOUBLE_EQ(out.At(2, 0), 4.0);  // mean of {1}
}

TEST(NeighborMeanTest, DegreeColumnsCorrect) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  Matrix f(5, 1, 1.0);
  const Matrix out = NeighborMeanFeatures(g, f);
  // E (node 4) has in-degree 3, out-degree 0.
  EXPECT_DOUBLE_EQ(out.At(4, 1), 3.0);
  EXPECT_DOUBLE_EQ(out.At(4, 2), 0.0);
  // A (node 0) has in-degree 0, out-degree 2.
  EXPECT_DOUBLE_EQ(out.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.At(0, 2), 2.0);
}

TEST(NeighborMeanTest, MultipleInNeighborsAveraged) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  Matrix f(5, 1);
  for (NodeId v = 0; v < 5; ++v) f.At(v, 0) = static_cast<double>(v);
  const Matrix out = NeighborMeanFeatures(g, f);
  // E's in-neighbors are B(1), C(2), D(3): mean 2.
  EXPECT_DOUBLE_EQ(out.At(4, 0), 2.0);
}

TEST(HighOrderTest, OutputShape) {
  UncertainGraph g = testing::ChainGraph(0.1, 0.5);
  Matrix f(3, 2, 1.0);
  const Matrix out = HighOrderFeatures(g, f, 3);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 2u * 4u);  // self + 3 hops
}

TEST(HighOrderTest, SelfBlockIsIdentityCopy) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const Matrix f = OneHotFeatures(5);
  const Matrix out = HighOrderFeatures(g, f, 1);
  for (NodeId v = 0; v < 5; ++v) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(out.At(v, j), f.At(v, j));
    }
  }
}

TEST(HighOrderTest, HopOnePullsInNeighborMass) {
  UncertainGraph g = testing::ChainGraph(0.1, 0.5);  // 0 -> 1 -> 2
  const Matrix f = OneHotFeatures(3);
  const Matrix out = HighOrderFeatures(g, f, 2);
  const std::size_t d = 3;
  // Node 1's hop-1 block is node 0's one-hot (its only in-neighbor).
  EXPECT_DOUBLE_EQ(out.At(1, d + 0), 1.0);
  EXPECT_DOUBLE_EQ(out.At(1, d + 1), 0.0);
  // Node 2's hop-2 block reaches node 0 through node 1.
  EXPECT_DOUBLE_EQ(out.At(2, 2 * d + 0), 1.0);
  // Node 0 has no in-neighbors: hop blocks stay zero.
  for (std::size_t j = d; j < 3 * d; ++j) {
    EXPECT_DOUBLE_EQ(out.At(0, j), 0.0);
  }
}

TEST(HighOrderTest, AttentionWeightsAreConvex) {
  // With several in-neighbors, the aggregated one-hot mass sums to 1
  // (softmax weights are a convex combination).
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const Matrix f = OneHotFeatures(5);
  const Matrix out = HighOrderFeatures(g, f, 1);
  const std::size_t d = 5;
  double mass = 0.0;
  for (std::size_t j = 0; j < d; ++j) mass += out.At(4, d + j);  // node E
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

}  // namespace
}  // namespace vulnds
