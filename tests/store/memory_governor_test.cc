#include "store/memory_governor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace vulnds::store {
namespace {

TEST(MemoryGovernorTest, ZeroBudgetAccountsButNeverSheds) {
  MemoryGovernor governor;  // budget 0 = accounting only
  bool shed_called = false;
  governor.RegisterShedder(ChargeClass::kContext, [&](std::size_t) {
    shed_called = true;
    return std::size_t{0};
  });
  governor.Charge(ChargeClass::kSnapshot, 1 << 20);
  governor.Charge(ChargeClass::kContext, 123);
  EXPECT_EQ(governor.charged(ChargeClass::kSnapshot), std::size_t{1} << 20);
  EXPECT_EQ(governor.charged(ChargeClass::kContext), 123u);
  EXPECT_EQ(governor.total_charged(), (std::size_t{1} << 20) + 123u);
  EXPECT_FALSE(shed_called);
  governor.Discharge(ChargeClass::kSnapshot, 1 << 20);
  governor.Discharge(ChargeClass::kContext, 123);
  EXPECT_EQ(governor.total_charged(), 0u);
  EXPECT_FALSE(governor.Oversize(std::size_t{1} << 40));
}

TEST(MemoryGovernorTest, OversizeOnlyBeyondBudget) {
  MemoryGovernorOptions options;
  options.budget_bytes = 1000;
  MemoryGovernor governor(options);
  EXPECT_FALSE(governor.Oversize(1000));
  EXPECT_TRUE(governor.Oversize(1001));
}

TEST(MemoryGovernorTest, RechargeReplacesWithoutDoubleCounting) {
  MemoryGovernor governor;
  governor.Charge(ChargeClass::kResult, 400);
  governor.Recharge(ChargeClass::kResult, 400, 150);
  EXPECT_EQ(governor.charged(ChargeClass::kResult), 150u);
  governor.Recharge(ChargeClass::kResult, 150, 600);
  EXPECT_EQ(governor.charged(ChargeClass::kResult), 600u);
}

TEST(MemoryGovernorTest, ShedsInClassOrderContextFirst) {
  MemoryGovernorOptions options;
  options.budget_bytes = 100;
  MemoryGovernor governor(options);
  // Each class holds 80 bytes it can give back; record who was asked.
  std::vector<std::string> order;
  std::size_t context_held = 0, snapshot_held = 0, result_held = 0;
  governor.RegisterShedder(ChargeClass::kContext, [&](std::size_t want) {
    order.push_back("context");
    const std::size_t freed = std::min(want, context_held);
    context_held -= freed;
    governor.Discharge(ChargeClass::kContext, freed);
    return freed;
  });
  governor.RegisterShedder(ChargeClass::kSnapshot, [&](std::size_t want) {
    order.push_back("snapshot");
    const std::size_t freed = std::min(want, snapshot_held);
    snapshot_held -= freed;
    governor.Discharge(ChargeClass::kSnapshot, freed);
    return freed;
  });
  governor.RegisterShedder(ChargeClass::kResult, [&](std::size_t want) {
    order.push_back("result");
    const std::size_t freed = std::min(want, result_held);
    result_held -= freed;
    governor.Discharge(ChargeClass::kResult, freed);
    return freed;
  });

  // 80 bytes per class = 240 total against a budget of 100. The shed loop
  // must drain contexts fully, then take the remaining 60 from snapshots,
  // and never touch results.
  context_held = 80;
  governor.Charge(ChargeClass::kContext, 80);
  snapshot_held = 80;
  governor.Charge(ChargeClass::kSnapshot, 80);
  result_held = 80;
  governor.Charge(ChargeClass::kResult, 80);

  EXPECT_LE(governor.total_charged(), 100u);
  EXPECT_EQ(governor.charged(ChargeClass::kContext), 0u);
  EXPECT_EQ(governor.charged(ChargeClass::kSnapshot), 20u);
  EXPECT_EQ(governor.charged(ChargeClass::kResult), 80u);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), "context");
  for (const std::string& who : order) EXPECT_NE(who, "result");
  EXPECT_GE(governor.sheds(ChargeClass::kContext), 1u);
  EXPECT_EQ(governor.shed_bytes(ChargeClass::kContext), 80u);
  EXPECT_EQ(governor.shed_bytes(ChargeClass::kSnapshot), 60u);
}

TEST(MemoryGovernorTest, StopsCleanlyWhenNothingCanBeFreed) {
  MemoryGovernorOptions options;
  options.budget_bytes = 10;
  MemoryGovernor governor(options);
  int calls = 0;
  governor.RegisterShedder(ChargeClass::kContext, [&](std::size_t) {
    ++calls;
    return std::size_t{0};  // everything pinned
  });
  governor.Charge(ChargeClass::kSnapshot, 100);  // must not loop forever
  EXPECT_EQ(governor.total_charged(), 100u);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(governor.sheds(ChargeClass::kContext), 0u);
}

// The budget invariant: under a randomized charge/discharge workload whose
// shedders can always free every outstanding byte, the total charge never
// remains above the budget after a Charge returns.
TEST(MemoryGovernorTest, ChargedBytesNeverExceedBudgetProperty) {
  MemoryGovernorOptions options;
  options.budget_bytes = 5000;
  MemoryGovernor governor(options);
  std::size_t held[kChargeClassCount] = {};
  const ChargeClass classes[] = {ChargeClass::kContext, ChargeClass::kSnapshot,
                                 ChargeClass::kResult};
  for (const ChargeClass cls : classes) {
    governor.RegisterShedder(cls, [&, cls](std::size_t want) {
      std::size_t& mine = held[static_cast<int>(cls)];
      const std::size_t freed = std::min(want, mine);
      mine -= freed;
      governor.Discharge(cls, freed);
      return freed;
    });
  }
  Rng rng(42);
  for (int step = 0; step < 2000; ++step) {
    const ChargeClass cls = classes[rng.NextBounded(3)];
    std::size_t& mine = held[static_cast<int>(cls)];
    if (rng.NextDouble() < 0.7 || mine == 0) {
      const std::size_t bytes = 1 + rng.NextBounded(900);
      mine += bytes;
      governor.Charge(cls, bytes);
    } else {
      const std::size_t bytes = 1 + rng.NextBounded(mine);
      mine -= bytes;
      governor.Discharge(cls, bytes);
    }
    ASSERT_LE(governor.total_charged(), options.budget_bytes)
        << "step " << step;
    // The governor's ledger and the pools' own books must agree.
    for (const ChargeClass check : classes) {
      ASSERT_EQ(governor.charged(check), held[static_cast<int>(check)]);
    }
  }
}

}  // namespace
}  // namespace vulnds::store
