// Small fixture graphs shared across test files.

#ifndef VULNDS_TESTS_TESTING_TEST_GRAPHS_H_
#define VULNDS_TESTS_TESTING_TEST_GRAPHS_H_

#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/builder.h"
#include "graph/uncertain_graph.h"

namespace vulnds::testing {

/// Aborts on a non-OK status (works in Release builds unlike assert).
inline void CheckOk(const Status& status) {
  if (!status.ok()) std::abort();
}

/// The paper's running example (Figure 3): 5 nodes A..E, 6 edges, all
/// probabilities `p` (Example 1 uses p = 0.2).
inline UncertainGraph PaperExampleGraph(double p = 0.2) {
  UncertainGraphBuilder b(5);
  for (NodeId v = 0; v < 5; ++v) CheckOk(b.SetSelfRisk(v, p));
  // A=0 B=1 C=2 D=3 E=4; edges as in Figure 3(e).
  CheckOk(b.AddEdge(0, 1, p));  // A -> B
  CheckOk(b.AddEdge(0, 2, p));  // A -> C
  CheckOk(b.AddEdge(1, 3, p));  // B -> D
  CheckOk(b.AddEdge(1, 4, p));  // B -> E
  CheckOk(b.AddEdge(2, 4, p));  // C -> E
  CheckOk(b.AddEdge(3, 4, p));  // D -> E
  return b.Build().MoveValue();
}

/// A 3-node chain a -> b -> c with the given probabilities.
inline UncertainGraph ChainGraph(double ps, double pe) {
  UncertainGraphBuilder b(3);
  for (NodeId v = 0; v < 3; ++v) CheckOk(b.SetSelfRisk(v, ps));
  CheckOk(b.AddEdge(0, 1, pe));
  CheckOk(b.AddEdge(1, 2, pe));
  return b.Build().MoveValue();
}

/// Random small graph for oracle comparisons: n nodes, each possible edge
/// picked independently with probability `edge_density`; all probabilities
/// uniform. Total uncertain entities stay enumerable for n <= 5 or so.
inline UncertainGraph RandomSmallGraph(std::size_t n, double edge_density,
                                       uint64_t seed) {
  Rng rng(seed);
  UncertainGraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    CheckOk(b.SetSelfRisk(v, rng.NextDouble()));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (rng.NextDouble() < edge_density) {
        CheckOk(b.AddEdge(u, v, rng.NextDouble()));
      }
    }
  }
  return b.Build().MoveValue();
}

}  // namespace vulnds::testing

#endif  // VULNDS_TESTS_TESTING_TEST_GRAPHS_H_
