// Property tests of the tier-for-tier bit-identity contract: every kernel,
// compared lane against the scalar reference (and against the pre-existing
// double-comparison coin semantics) across lane alignments, tail lengths and
// degenerate probabilities. When the host lacks AVX2 only the scalar tier is
// exercised — the loops below iterate the AVAILABLE tiers, so the suite
// passes (rather than vacuously skips) everywhere.

#include "simd/coin_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "simd/dispatch.h"

namespace vulnds::simd {
namespace {

std::vector<SimdTier> AvailableTiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar};
  if (Avx2Available()) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

// (double(x) + 0.5) * 2^-53: the exact HashUnit conversion of a 53-bit hash.
double UnitOf(uint64_t x) {
  return (static_cast<double>(x) + 0.5) * 0x1.0p-53;
}

// The probabilities most likely to break an integer-threshold conversion:
// the 0/1 early-outs, NaN, values straddling representability boundaries,
// and exact HashUnit outputs (where < must stay strict).
std::vector<double> AdversarialProbs() {
  std::vector<double> probs = {
      0.0,
      -0.0,
      -1.0,
      1.0,
      1.5,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::nextafter(0.0, 1.0),
      std::nextafter(1.0, 0.0),
      std::nextafter(1.0, 2.0),
      0x1.0p-53,
      0x1.0p-54,
      0.5,
      std::nextafter(0.5, 0.0),
      std::nextafter(0.5, 1.0),
  };
  // Exact HashUnit values and their neighbors, across the magnitude range
  // (including x >= 2^52 where double(x) + 0.5 rounds to even).
  for (const uint64_t x :
       {uint64_t{0}, uint64_t{1}, uint64_t{12345}, uint64_t{1} << 32,
        (uint64_t{1} << 52) - 1, uint64_t{1} << 52, (uint64_t{1} << 52) + 1,
        (uint64_t{1} << 53) - 2, (uint64_t{1} << 53) - 1}) {
    const double u = UnitOf(x);
    probs.push_back(u);
    probs.push_back(std::nextafter(u, 0.0));
    probs.push_back(std::nextafter(u, 2.0));
  }
  Rng rng(0xC01Fu);
  for (int i = 0; i < 200; ++i) probs.push_back(rng.NextDouble());
  return probs;
}

TEST(CoinThresholdTest, ExactlyCharacterizesTheDoublePredicate) {
  for (const double prob : AdversarialProbs()) {
    const uint64_t t = CoinThreshold(prob);
    ASSERT_LE(t, kCoinAlways);
    if (std::isnan(prob) || prob <= 0.0) {
      EXPECT_EQ(t, 0u) << prob;
      continue;
    }
    if (prob >= 1.0) {
      EXPECT_EQ(t, kCoinAlways) << prob;
      continue;
    }
    // T is the unique boundary of the down-set {x : UnitOf(x) < prob}.
    if (t > 0) EXPECT_LT(UnitOf(t - 1), prob) << prob;
    if (t < kCoinAlways) EXPECT_FALSE(UnitOf(t) < prob) << prob;
  }
}

TEST(CoinHitsTest, MatchesTheUniformHashDoubleComparison) {
  Rng rng(0x5EEDu);
  const std::vector<double> probs = AdversarialProbs();
  for (int round = 0; round < 50; ++round) {
    const uint64_t seed = rng.NextU64();
    const UniformHash hash(seed);
    for (const double prob : probs) {
      const uint64_t threshold = CoinThreshold(prob);
      const uint64_t id = rng.NextU64();
      const bool reference =
          !std::isnan(prob) && hash.HashUnit(id) < prob;
      EXPECT_EQ(CoinHits(seed, CoinInnerHash(id), threshold), reference)
          << "seed=" << seed << " id=" << id << " prob=" << prob;
    }
  }
}

// Every run length from empty through two full vector blocks plus every
// possible tail, and a couple of longer ones.
std::vector<std::size_t> RunLengths() {
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 2 * kCoinLanes + 1; ++n) lengths.push_back(n);
  lengths.push_back(3 * kCoinLanes);
  lengths.push_back(37);
  lengths.push_back(100);
  return lengths;
}

struct CoinRun {
  std::vector<uint64_t> inner;
  std::vector<uint64_t> threshold;
};

CoinRun MakeRun(Rng* rng, std::size_t n, std::size_t padded_capacity) {
  CoinRun run;
  run.inner.assign(padded_capacity, 0);
  run.threshold.assign(padded_capacity, 0);
  for (std::size_t i = 0; i < n; ++i) {
    run.inner[i] = CoinInnerHash(rng->NextU64());
    // Mix degenerate thresholds (never / always) in with real ones.
    const uint64_t kind = rng->NextBounded(4);
    if (kind == 0) {
      run.threshold[i] = 0;
    } else if (kind == 1) {
      run.threshold[i] = kCoinAlways;
    } else {
      run.threshold[i] = CoinThreshold(rng->NextDouble());
    }
  }
  return run;
}

TEST(CoinSurvivorsTest, EveryTierMatchesScalarOnEveryTailLength) {
  Rng rng(0xFACEu);
  const std::vector<SimdTier> tiers = AvailableTiers();
  for (const std::size_t n : RunLengths()) {
    for (int round = 0; round < 20; ++round) {
      const CoinRun run = MakeRun(&rng, n, n);
      const uint64_t seed = rng.NextU64();
      std::vector<uint32_t> reference(n + 1, 0xDEAD);
      CoinKernelStats reference_stats;
      const std::size_t reference_count =
          CoinSurvivors(SimdTier::kScalar, seed, run.inner.data(),
                        run.threshold.data(), n, reference.data(),
                        &reference_stats);
      ASSERT_LE(reference_count, n);
      for (const SimdTier tier : tiers) {
        std::vector<uint32_t> out(n + 1, 0xBEEF);
        CoinKernelStats stats;
        const std::size_t count =
            CoinSurvivors(tier, seed, run.inner.data(), run.threshold.data(),
                          n, out.data(), &stats);
        ASSERT_EQ(count, reference_count) << "tier=" << SimdTierName(tier)
                                          << " n=" << n;
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(out[i], reference[i]) << "tier=" << SimdTierName(tier)
                                          << " n=" << n << " i=" << i;
        }
        // Telemetry accounts every coin exactly once in some bucket.
        EXPECT_EQ(stats.batched_coins + stats.tail_coins, n);
      }
    }
  }
}

TEST(CoinSurvivorsPaddedTest, MatchesUnpaddedOnTheTrueLength) {
  Rng rng(0xBA5Eu);
  const std::vector<SimdTier> tiers = AvailableTiers();
  for (const std::size_t n : RunLengths()) {
    const std::size_t padded = ((n + kCoinLanes - 1) / kCoinLanes) * kCoinLanes;
    for (int round = 0; round < 20; ++round) {
      const CoinRun run = MakeRun(&rng, n, padded);
      const uint64_t seed = rng.NextU64();
      std::vector<uint32_t> reference(n + 1, 0);
      CoinKernelStats reference_stats;
      const std::size_t reference_count =
          CoinSurvivors(SimdTier::kScalar, seed, run.inner.data(),
                        run.threshold.data(), n, reference.data(),
                        &reference_stats);
      for (const SimdTier tier : tiers) {
        std::vector<uint32_t> out(padded + 1, 0);
        CoinKernelStats stats;
        const std::size_t count =
            CoinSurvivorsPadded(tier, seed, run.inner.data(),
                                run.threshold.data(), n, out.data(), &stats);
        ASSERT_EQ(count, reference_count) << "tier=" << SimdTierName(tier)
                                          << " n=" << n;
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(out[i], reference[i]);
          // Padding slots (threshold 0) must never leak into the survivors.
          EXPECT_LT(out[i], n);
        }
      }
    }
  }
}

TEST(HashBatchTest, MatchesUniformHashElementwise) {
  Rng rng(0x4A5Bu);
  const std::vector<SimdTier> tiers = AvailableTiers();
  for (const std::size_t n : RunLengths()) {
    const uint64_t seed = rng.NextU64();
    const uint64_t base = rng.NextU64() >> 1;  // room for base + n
    const UniformHash hash(seed);
    for (const SimdTier tier : tiers) {
      std::vector<uint64_t> out(n + 1, 0xABAD1DEA);
      HashBatch(tier, seed, base, n, out.data(), nullptr);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], hash.Hash64(base + i))
            << "tier=" << SimdTierName(tier) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(FindActiveTest, MatchesScalarWithAndWithoutVeto) {
  Rng rng(0xF1A6u);
  const std::vector<SimdTier> tiers = AvailableTiers();
  // Lengths straddling the 32-byte AVX2 block width and its tails.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{31},
                              std::size_t{32}, std::size_t{33}, std::size_t{64},
                              std::size_t{70}, std::size_t{100}}) {
    for (int round = 0; round < 20; ++round) {
      std::vector<unsigned char> flags(n), veto(n);
      for (std::size_t i = 0; i < n; ++i) {
        flags[i] = static_cast<unsigned char>(rng.NextBounded(2));
        veto[i] = static_cast<unsigned char>(rng.NextBounded(2));
      }
      const unsigned char* veto_cases[] = {nullptr, veto.data()};
      for (const unsigned char* v : veto_cases) {
        std::vector<uint32_t> reference(n + 1, 0);
        const std::size_t reference_count = FindActive(
            SimdTier::kScalar, flags.data(), v, n, reference.data());
        for (const SimdTier tier : tiers) {
          std::vector<uint32_t> out(n + 1, 0);
          const std::size_t count =
              FindActive(tier, flags.data(), v, n, out.data());
          ASSERT_EQ(count, reference_count)
              << "tier=" << SimdTierName(tier) << " n=" << n
              << " veto=" << (v != nullptr);
          for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(out[i], reference[i]);
          }
        }
      }
    }
  }
}

TEST(AccumulateCountsTest, MatchesScalarAdd) {
  Rng rng(0xACC0u);
  const std::vector<SimdTier> tiers = AvailableTiers();
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{16},
                              std::size_t{33}, std::size_t{100}}) {
    for (int round = 0; round < 20; ++round) {
      std::vector<unsigned char> flags(n);
      std::vector<uint32_t> base(n);
      for (std::size_t i = 0; i < n; ++i) {
        flags[i] = static_cast<unsigned char>(rng.NextBounded(2));
        base[i] = static_cast<uint32_t>(rng.NextBounded(1000));
      }
      std::vector<uint32_t> reference = base;
      AccumulateCounts(SimdTier::kScalar, reference.data(), flags.data(), n);
      for (const SimdTier tier : tiers) {
        std::vector<uint32_t> counts = base;
        AccumulateCounts(tier, counts.data(), flags.data(), n);
        EXPECT_EQ(counts, reference) << "tier=" << SimdTierName(tier)
                                     << " n=" << n;
      }
    }
  }
}

}  // namespace
}  // namespace vulnds::simd
