#include "simd/dispatch.h"

#include <gtest/gtest.h>

namespace vulnds::simd {
namespace {

TEST(SimdDispatchTest, ParseAcceptsKnobVocabularyCaseInsensitive) {
  const struct {
    const char* text;
    SimdMode mode;
  } cases[] = {
      {"auto", SimdMode::kAuto},     {"AUTO", SimdMode::kAuto},
      {"Auto", SimdMode::kAuto},     {"scalar", SimdMode::kScalar},
      {"SCALAR", SimdMode::kScalar}, {"avx2", SimdMode::kAvx2},
      {"AVX2", SimdMode::kAvx2},     {"Avx2", SimdMode::kAvx2},
  };
  for (const auto& c : cases) {
    Result<SimdMode> m = ParseSimdMode(c.text);
    ASSERT_TRUE(m.ok()) << c.text;
    EXPECT_EQ(*m, c.mode) << c.text;
  }
}

TEST(SimdDispatchTest, ParseRejectsJunk) {
  for (const char* bad : {"", "avx", "avx512", "sse", "0", "on", "scalar "}) {
    EXPECT_FALSE(ParseSimdMode(bad).ok()) << "'" << bad << "'";
  }
}

TEST(SimdDispatchTest, ModeAndTierNamesRoundTripThroughParse) {
  for (const SimdMode m : {SimdMode::kAuto, SimdMode::kScalar, SimdMode::kAvx2}) {
    Result<SimdMode> parsed = ParseSimdMode(SimdModeName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
}

TEST(SimdDispatchTest, ScalarIsAlwaysHonored) {
  EXPECT_EQ(ResolveTier(SimdMode::kScalar), SimdTier::kScalar);
}

TEST(SimdDispatchTest, AutoResolvesToProcessDefault) {
  EXPECT_EQ(ResolveTier(SimdMode::kAuto), DefaultTier());
}

TEST(SimdDispatchTest, Avx2DegradesToScalarWhenUnavailable) {
  const SimdTier resolved = ResolveTier(SimdMode::kAvx2);
  if (Avx2Available()) {
    EXPECT_EQ(resolved, SimdTier::kAvx2);
  } else {
    EXPECT_EQ(resolved, SimdTier::kScalar);
  }
}

TEST(SimdDispatchTest, BestSupportedTierIsConsistentWithAvailability) {
  EXPECT_EQ(BestSupportedTier(),
            Avx2Available() ? SimdTier::kAvx2 : SimdTier::kScalar);
  // The CPU cannot report an instruction set the build never compiled.
  if (!Avx2KernelsCompiled()) EXPECT_FALSE(Avx2Available());
}

}  // namespace
}  // namespace vulnds::simd
