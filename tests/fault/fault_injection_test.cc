// End-to-end IO-failure behavior through the serve surface: injected
// journal failures answer protocol `err` lines without tearing in-memory
// state, committed versions are never half-visible across a restart, and a
// fail-once sweep over every registered failpoint leaves the serve loop
// alive and consistent.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "dyn/journal.h"
#include "dyn/update_manager.h"
#include "graph/builder.h"
#include "store/memory_governor.h"
#include "graph/graph_io.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "serve/session.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

using dyn::DeltaJournal;
using dyn::JournalReplayStats;
using dyn::UpdateManager;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

// A journaled serve stack: catalog + journal + updates + engine + session.
struct Stack {
  std::unique_ptr<GraphCatalog> catalog;
  std::unique_ptr<DeltaJournal> journal;
  std::unique_ptr<UpdateManager> updates;
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<ServeSession> session;

  // One protocol request; returns the (possibly multi-line) response.
  std::string Run(const std::string& line) {
    std::ostringstream out;
    session->HandleLine(line, out);
    return out.str();
  }
};

Stack OpenStack(const std::string& journal_path, bool replay) {
  Stack s;
  s.catalog = std::make_unique<GraphCatalog>();
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(journal_path);
  EXPECT_TRUE(journal.ok()) << journal.status().ToString();
  s.journal = journal.MoveValue();
  s.updates =
      std::make_unique<UpdateManager>(s.catalog.get(), s.journal.get());
  if (replay) {
    Result<JournalReplayStats> replayed = s.updates->ReplayJournal();
    EXPECT_TRUE(replayed.ok()) << replayed.status().ToString();
  }
  s.engine = std::make_unique<QueryEngine>(s.catalog.get());
  s.session =
      std::make_unique<ServeSession>(s.engine.get(), s.updates.get());
  return s;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

// Journal fsync starts failing mid-traffic (after:2 — the first two commit
// barriers hold, then every barrier fails). Commits answer protocol `err`,
// in-memory state stays commit-consistent, and after the fault clears the
// SAME version commits successfully. Every version that ever answered
// "ok committed" survives a restart replay.
TEST_F(FaultInjectionTest, FsyncFailuresAnswerErrAndNeverTearCommits) {
  const std::string graph_path = TempPath("fault_fsync_base.snap");
  ASSERT_TRUE(WriteGraphFile(testing::PaperExampleGraph(0.2), graph_path,
                             GraphFileFormat::kBinary)
                  .ok());
  const std::string journal_path = TempPath("fault_fsync.log");
  std::remove(journal_path.c_str());

  std::vector<std::string> committed;  // versioned names the client saw ok'd
  {
    Stack s = OpenStack(journal_path, /*replay=*/false);
    ASSERT_TRUE(s.catalog->Load("g", graph_path).ok());
    ASSERT_TRUE(fail::Arm(fail::points::kJournalSyncFsync, "after:2:eio").ok());

    // v1 and v2 commit under working fsync.
    for (int v = 1; v <= 2; ++v) {
      ASSERT_TRUE(StartsWith(s.Run("addedge g 4 0 0.5"), "ok addedge"));
      ASSERT_TRUE(StartsWith(s.Run("deledge g 4 0"), "ok deledge"));
      const std::string response = s.Run("commit g");
      ASSERT_TRUE(StartsWith(response, "ok committed g@v" + std::to_string(v)))
          << response;
      committed.push_back("g@v" + std::to_string(v));
    }

    // fsync now fails (and keeps failing through the bounded retries):
    // the commit answers err, the staged op is retained, and the version
    // is NOT visible — not in the catalog, not in the versions list.
    ASSERT_TRUE(StartsWith(s.Run("addedge g 4 0 0.5"), "ok addedge"));
    const std::string failed = s.Run("commit g");
    EXPECT_TRUE(StartsWith(failed, "err")) << failed;
    EXPECT_GE(fail::Hits(fail::points::kJournalSyncFsync), 3u);
    EXPECT_EQ(s.catalog->Get("g@v3"), nullptr);
    EXPECT_TRUE(StartsWith(s.Run("versions g"), "ok versions g count=3"));
    EXPECT_GE(s.updates->stats().journal_errors, 1u);

    // Detect on the latest committed version still serves.
    EXPECT_TRUE(StartsWith(s.Run("detect g@v2 2"), "ok detect g@v2"));

    // Fault clears: the retried commit materializes the same v3 with the
    // retained staged op.
    fail::DisarmAll();
    const std::string retried = s.Run("commit g");
    ASSERT_TRUE(StartsWith(retried, "ok committed g@v3")) << retried;
    committed.push_back("g@v3");
  }

  // Restart: every ok'd version is back, bit-exactly addressable by name.
  Stack s = OpenStack(journal_path, /*replay=*/true);
  for (const std::string& name : committed) {
    EXPECT_NE(s.catalog->Get(name), nullptr) << name << " lost by restart";
  }
  EXPECT_TRUE(StartsWith(s.Run("versions g"), "ok versions g count=4"));
}

// Journal append failures: the staged op is rolled back out of the overlay
// (err is the truth — the op neither serves nor survives), and the journal
// stays append-consistent even when the injected failure tears a record in
// half on disk.
TEST_F(FaultInjectionTest, AppendFailureRollsTheOpBack) {
  const std::string graph_path = TempPath("fault_append_base.snap");
  ASSERT_TRUE(WriteGraphFile(testing::PaperExampleGraph(0.2), graph_path,
                             GraphFileFormat::kBinary)
                  .ok());
  // every:1 defeats the bounded internal retry (all 3 attempts fail); a
  // sparse fault like once: is absorbed by the retry and never reaches the
  // client. The short-write variant really tears a frame on disk each
  // attempt, exercising the append boundary rollback.
  for (const char* spec : {"every:1:eio", "every:1:short"}) {
    SCOPED_TRACE(spec);
    fail::DisarmAll();
    const std::string journal_path = TempPath(
        std::string("fault_append_") +
        (std::string(spec).find("short") != std::string::npos ? "short"
                                                              : "eio") +
        ".log");
    std::remove(journal_path.c_str());
    {
      Stack s = OpenStack(journal_path, /*replay=*/false);
      ASSERT_TRUE(s.catalog->Load("g", graph_path).ok());

      ASSERT_TRUE(fail::Arm(fail::points::kJournalAppendWrite, spec).ok());
      const std::string rejected = s.Run("addedge g 4 0 0.5");
      EXPECT_TRUE(StartsWith(rejected, "err")) << rejected;
      fail::DisarmAll();

      // The op was rolled back: nothing staged, commit refuses.
      EXPECT_EQ(s.updates->stats().journal_rollbacks, 1u);
      EXPECT_TRUE(StartsWith(s.Run("commit g"), "err"));

      // The journal accepts the retried op at the rolled-back boundary.
      ASSERT_TRUE(StartsWith(s.Run("addedge g 4 0 0.5"), "ok addedge"));
      ASSERT_TRUE(StartsWith(s.Run("commit g"), "ok committed g@v1"));
    }
    // Replay sees exactly one op and one commit — the torn/failed append
    // left no phantom record.
    Stack s = OpenStack(journal_path, /*replay=*/true);
    const auto v1 = s.catalog->Get("g@v1");
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->graph.num_edges(), 7u);
    EXPECT_TRUE(StartsWith(s.Run("versions g"), "ok versions g count=2"));
  }
}

// Found by chaos testing: a journal replay that runs under memory pressure
// (bases spill mid-replay) with spill page-ins failing must never leave the
// journal worse than it found it. Degraded replay may abandon a lineage for
// that run, but then compaction is refused and a later healthy replay still
// reconstructs everything — a transient spill fault can never eat committed
// versions.
TEST_F(FaultInjectionTest, ReplayUnderSpillFaultsNeverDamagesTheJournal) {
  // A ring big enough that two snapshots cannot both stay resident.
  UncertainGraphBuilder b(200);
  for (NodeId v = 0; v < 200; ++v) ASSERT_TRUE(b.SetSelfRisk(v, 0.3).ok());
  for (NodeId v = 0; v < 200; ++v) {
    ASSERT_TRUE(b.AddEdge(v, (v + 1) % 200, 0.5).ok());
  }
  const UncertainGraph ring = b.Build().MoveValue();
  const std::string graph_path = TempPath("fault_replay_ring.snap");
  ASSERT_TRUE(
      WriteGraphFile(ring, graph_path, GraphFileFormat::kBinary).ok());
  const std::string journal_path = TempPath("fault_replay_spill.log");
  std::remove(journal_path.c_str());

  {  // Build a 2-version lineage + staged tail with no faults, no spill.
    Stack s = OpenStack(journal_path, /*replay=*/false);
    ASSERT_TRUE(s.catalog->Load("g", graph_path).ok());
    ASSERT_TRUE(s.updates->AddEdge("g", 0, 100, 0.5).ok());
    ASSERT_TRUE(s.updates->Commit("g").ok());  // v1: 201 edges
    ASSERT_TRUE(s.updates->AddEdge("g", 0, 101, 0.5).ok());
    ASSERT_TRUE(s.updates->Commit("g").ok());  // v2: 202 edges
    ASSERT_TRUE(s.updates->AddEdge("g", 0, 102, 0.5).ok());  // staged tail
  }

  {  // Replay under a budget that fits one snapshot, all page-ins failing.
    store::MemoryGovernorOptions governor_options;
    governor_options.budget_bytes = serve::EstimateGraphBytes(ring) + 512;
    store::MemoryGovernor governor(governor_options);
    GraphCatalogOptions catalog_options;
    catalog_options.spill_dir = TempPath("fault_replay_spill_dir");
    catalog_options.governor = &governor;
    auto catalog = std::make_unique<GraphCatalog>(catalog_options);
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    UpdateManager updates(catalog.get(), journal->get());

    ASSERT_TRUE(fail::Arm(fail::points::kSpillPageIn, "every:1:eio").ok());
    Result<JournalReplayStats> replayed = updates.ReplayJournal();
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    fail::DisarmAll();

    if (replayed->failed_names > 0) {
      // Degraded replay: the in-memory state is incomplete, so any journal
      // rewrite must be refused — it would drop the unreconstructed tail.
      EXPECT_FALSE(updates.CompactJournal().ok());
      EXPECT_EQ(updates.stats().journal_compactions, 0u);
      EXPECT_GE(updates.stats().compactions_refused, 1u);
    }
  }

  // A healthy restart recovers the full lineage: both committed versions
  // with their exact edge counts, the staged tail, no version collisions.
  Stack s = OpenStack(journal_path, /*replay=*/true);
  const auto v1 = s.catalog->GetOrLoad("g@v1");
  const auto v2 = s.catalog->GetOrLoad("g@v2");
  ASSERT_TRUE(v1.ok() && *v1 != nullptr);
  ASSERT_TRUE(v2.ok() && *v2 != nullptr);
  EXPECT_EQ((*v1)->graph.num_edges(), 201u);
  EXPECT_EQ((*v2)->graph.num_edges(), 202u);
  EXPECT_TRUE(StartsWith(s.Run("versions g"), "ok versions g count=3"));
  const std::string committed = s.Run("commit g");
  EXPECT_TRUE(StartsWith(committed, "ok committed g@v3")) << committed;
}

// Arm every registered failpoint fail-once simultaneously and drive a full
// serve script. The loop must never crash; each response is a well-formed
// ok/err line; after the faults burn off, a retried commit succeeds and a
// restart replay agrees with what the client was told.
TEST_F(FaultInjectionTest, AllSitesFailOnceSweepKeepsServing) {
  const std::string graph_path = TempPath("fault_sweep_base.snap");
  ASSERT_TRUE(WriteGraphFile(testing::PaperExampleGraph(0.2), graph_path,
                             GraphFileFormat::kBinary)
                  .ok());
  const std::string journal_path = TempPath("fault_sweep.log");
  std::remove(journal_path.c_str());

  {
    Stack s = OpenStack(journal_path, /*replay=*/false);
    ASSERT_TRUE(s.catalog->Load("g", graph_path).ok());
    for (const std::string& point : fail::KnownPoints()) {
      ASSERT_TRUE(fail::Arm(point, "once:eio").ok()) << point;
    }

    const std::vector<std::string> script = {
        "detect g 2",         "addedge g 4 0 0.5", "commit g",
        "save g " + TempPath("fault_sweep_out.snap") + " binary",
        "versions g",           "stats g",           "detect g 2",
    };
    for (const std::string& line : script) {
      const std::string response = s.Run(line);
      ASSERT_FALSE(response.empty()) << line;
      EXPECT_TRUE(StartsWith(response, "ok") || StartsWith(response, "err"))
          << line << " -> " << response;
    }

    // Each armed point fires at most once; drive the script again so every
    // fault has burned off, then settle the lineage.
    for (const std::string& line : script) (void)s.Run(line);
    fail::DisarmAll();
    const std::string versions = s.Run("versions g");
    ASSERT_TRUE(StartsWith(versions, "ok versions g")) << versions;
    if (s.updates->stats().staged_ops > s.updates->stats().commits) {
      (void)s.Run("commit g");
    }
    EXPECT_TRUE(StartsWith(s.Run("detect g 2"), "ok detect g"));
  }

  // The journal replays cleanly whatever subset of operations survived.
  Stack s = OpenStack(journal_path, /*replay=*/true);
  EXPECT_TRUE(StartsWith(s.Run("detect g 2"), "ok detect g"));
  EXPECT_TRUE(StartsWith(s.Run("versions g"), "ok versions g"));
}

}  // namespace
}  // namespace vulnds::serve
