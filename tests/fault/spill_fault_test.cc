// Spill-directory crash consistency: startup GC of orphaned spill files
// (the pre-manifest leak), manifest protection of live processes' files,
// CRC detection of corrupted spill pages, and the degraded reload-from-
// source fallback when a spill copy cannot be trusted.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "graph/graph_io.h"
#include "serve/graph_catalog.h"
#include "store/memory_governor.h"
#include "testing/test_graphs.h"

namespace vulnds::serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string WriteTempGraph(const UncertainGraph& g, const std::string& name) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(WriteGraphFile(g, path, GraphFileFormat::kBinary).ok());
  return path;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
  ASSERT_TRUE(out.good()) << path;
}

// Builds a catalog whose governor budget fits one graph, loads g1 then g2
// so g1 spills. Returns the catalog; out params expose the pieces.
struct SpillRig {
  std::unique_ptr<store::MemoryGovernor> governor;
  std::unique_ptr<GraphCatalog> catalog;
  std::string source_path;  // g1's on-disk source
  uint64_t g1_uid = 0;      // g1's uid before it spilled
};

SpillRig SpillOne(const std::string& spill_dir, const std::string& tag) {
  SpillRig rig;
  const UncertainGraph g1 = testing::RandomSmallGraph(60, 0.2, 311);
  const UncertainGraph g2 = testing::RandomSmallGraph(60, 0.2, 322);
  rig.source_path = WriteTempGraph(g1, tag + "_src1.snap");
  const std::string p2 = WriteTempGraph(g2, tag + "_src2.snap");

  store::MemoryGovernorOptions governor_options;
  governor_options.budget_bytes =
      std::max(EstimateGraphBytes(g1), EstimateGraphBytes(g2)) + 512;
  rig.governor = std::make_unique<store::MemoryGovernor>(governor_options);
  GraphCatalogOptions options;
  options.spill_dir = spill_dir;
  options.governor = rig.governor.get();
  rig.catalog = std::make_unique<GraphCatalog>(options);
  EXPECT_TRUE(rig.catalog->Load("g1", rig.source_path).ok());
  if (const auto entry = rig.catalog->Get("g1")) rig.g1_uid = entry->uid;
  EXPECT_TRUE(rig.catalog->Load("g2", p2).ok());
  EXPECT_EQ(rig.catalog->spilled_count(), 1u);
  return rig;
}

class SpillFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

// Regression: spill files orphaned by kill -9 used to persist until the
// same sanitized-name+uid path happened to be reused. Startup GC now
// reclaims any *.vg2 debris no live process' manifest references —
// including torn atomic-write temps — and counts what it deleted.
TEST_F(SpillFaultTest, StartupGcReclaimsOrphansAndDeadManifests) {
  const std::string dir = TempPath("spill_gc_a");
  ::mkdir(dir.c_str(), 0777);
  WriteFile(dir + "/ghost.17.vg2", "stale spill payload");
  WriteFile(dir + "/ghost.18.vg2.tmp.99999", "torn temp payload");
  // A manifest from a pid that cannot be alive (pid_max is far below this)
  // referencing one of the orphans: a dead owner protects nothing.
  WriteFile(dir + "/MANIFEST.999999999", "ghost.17.vg2\n");

  GraphCatalogOptions options;
  options.spill_dir = dir;
  GraphCatalog catalog(options);

  EXPECT_EQ(catalog.spill_orphans_reclaimed(), 2u);
  const std::vector<std::string> left = ListDir(dir);
  EXPECT_TRUE(left.empty()) << left.size() << " files left";
}

TEST_F(SpillFaultTest, LiveManifestsProtectTheirFiles) {
  const std::string dir = TempPath("spill_gc_b");
  ::mkdir(dir.c_str(), 0777);
  WriteFile(dir + "/kept.5.vg2", "live spill payload");
  WriteFile(dir + "/orphan.6.vg2", "dead spill payload");
  // pid 1 is always alive (kill(1,0) answers EPERM for us): its manifest
  // shields kept.5.vg2, while orphan.6.vg2 has no living owner.
  WriteFile(dir + "/MANIFEST.1", "kept.5.vg2\n");

  GraphCatalogOptions options;
  options.spill_dir = dir;
  GraphCatalog catalog(options);

  EXPECT_EQ(catalog.spill_orphans_reclaimed(), 1u);
  std::ifstream kept(dir + "/kept.5.vg2");
  EXPECT_TRUE(kept.good()) << "live process' spill file was reclaimed";
  std::ifstream orphan(dir + "/orphan.6.vg2");
  EXPECT_FALSE(orphan.good()) << "orphan survived the GC";
  // A foreign live manifest is not ours to delete.
  std::ifstream manifest(dir + "/MANIFEST.1");
  EXPECT_TRUE(manifest.good());
  std::remove((dir + "/MANIFEST.1").c_str());
  std::remove((dir + "/kept.5.vg2").c_str());
}

// Clean shutdown leaves no debris at all: spill files and the manifest go
// with the catalog.
TEST_F(SpillFaultTest, DestructorRemovesSpillFilesAndManifest) {
  const std::string dir = TempPath("spill_gc_c");
  {
    SpillRig rig = SpillOne(dir, "gc_c");
    EXPECT_FALSE(ListDir(dir).empty());  // spill file + manifest exist
  }
  EXPECT_TRUE(ListDir(dir).empty());
}

// While spilled, this process' manifest names the file, so a concurrently
// constructed catalog over the same directory must not reclaim it.
TEST_F(SpillFaultTest, OwnLiveSpillSurvivesAnotherCatalogsGc) {
  const std::string dir = TempPath("spill_gc_d");
  SpillRig rig = SpillOne(dir, "gc_d");

  GraphCatalogOptions options;
  options.spill_dir = dir;
  GraphCatalog other(options);
  EXPECT_EQ(other.spill_orphans_reclaimed(), 0u);

  // The spilled graph still pages back fine.
  Result<std::shared_ptr<CatalogEntry>> paged = rig.catalog->GetOrLoad("g1");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_NE(*paged, nullptr);
}

// Bit-flip every 64th byte of the spill file: the CRC check must catch the
// corruption and the catalog must fall back to reloading the source under a
// fresh uid — a corrupted page is never deserialized into a served graph.
TEST_F(SpillFaultTest, CorruptedSpillPageFallsBackToSource) {
  const std::string dir = TempPath("spill_crc_a");
  SpillRig rig = SpillOne(dir, "crc_a");

  // Find the spill file and flip every 64th byte.
  std::string spill_file;
  for (const std::string& name : ListDir(dir)) {
    if (name.rfind("MANIFEST.", 0) != 0) spill_file = dir + "/" + name;
  }
  ASSERT_FALSE(spill_file.empty());
  std::string blob;
  {
    std::ifstream in(spill_file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    blob = buf.str();
  }
  ASSERT_FALSE(blob.empty());
  for (std::size_t i = 0; i < blob.size(); i += 64) blob[i] ^= 0x41;
  WriteFile(spill_file, blob);

  Result<std::shared_ptr<CatalogEntry>> paged = rig.catalog->GetOrLoad("g1");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_NE(*paged, nullptr);

  // The fallback reloaded the original source: content matches the source
  // snapshot bit-exactly.
  const std::string out = TempPath("crc_a_roundtrip.snap");
  ASSERT_TRUE(
      WriteGraphFile((*paged)->graph, out, GraphFileFormat::kBinary).ok());
  std::ifstream a(out, std::ios::binary), b(rig.source_path, std::ios::binary);
  std::ostringstream abuf, bbuf;
  abuf << a.rdbuf();
  bbuf << b.rdbuf();
  EXPECT_EQ(abuf.str(), bbuf.str());

  // The reload reconstructed the exact snapshot that spilled (the source
  // never changed), so the original uid survives: result caches stay valid
  // and update lineages rooted here do not see a spurious base reload.
  EXPECT_EQ((*paged)->uid, rig.g1_uid);
}

// Same corruption, but the SOURCE was also replaced with different content
// since the spill. The fallback still serves (the newest source truth), but
// under a fresh uid: results cached against the lost snapshot must become
// unreachable rather than answer for different content.
TEST_F(SpillFaultTest, ChangedSourceAfterSpillGetsAFreshUid) {
  const std::string dir = TempPath("spill_crc_c");
  SpillRig rig = SpillOne(dir, "crc_c");

  std::string spill_file;
  for (const std::string& name : ListDir(dir)) {
    if (name.rfind("MANIFEST.", 0) != 0) spill_file = dir + "/" + name;
  }
  ASSERT_FALSE(spill_file.empty());
  std::string blob;
  {
    std::ifstream in(spill_file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    blob = buf.str();
  }
  for (std::size_t i = 0; i < blob.size(); i += 64) blob[i] ^= 0x41;
  WriteFile(spill_file, blob);
  // Replace the source with a different graph (same path).
  const UncertainGraph replacement = testing::RandomSmallGraph(60, 0.2, 999);
  ASSERT_TRUE(WriteGraphFile(replacement, rig.source_path,
                             GraphFileFormat::kBinary)
                  .ok());

  Result<std::shared_ptr<CatalogEntry>> paged = rig.catalog->GetOrLoad("g1");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_NE(*paged, nullptr);
  EXPECT_NE((*paged)->uid, rig.g1_uid);
  EXPECT_EQ((*paged)->graph.num_edges(), replacement.num_edges());
}

// Same corruption, but the source snapshot is gone too: the page-in fails
// with a "graph unavailable" error — it must NOT serve a wrong graph — and
// every other name keeps serving.
TEST_F(SpillFaultTest, CorruptedSpillWithoutSourceIsUnavailableNotWrong) {
  const std::string dir = TempPath("spill_crc_b");
  SpillRig rig = SpillOne(dir, "crc_b");

  std::string spill_file;
  for (const std::string& name : ListDir(dir)) {
    if (name.rfind("MANIFEST.", 0) != 0) spill_file = dir + "/" + name;
  }
  ASSERT_FALSE(spill_file.empty());
  std::string blob;
  {
    std::ifstream in(spill_file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    blob = buf.str();
  }
  for (std::size_t i = 0; i < blob.size(); i += 64) blob[i] ^= 0x41;
  WriteFile(spill_file, blob);
  std::remove(rig.source_path.c_str());  // no fallback source either

  Result<std::shared_ptr<CatalogEntry>> paged = rig.catalog->GetOrLoad("g1");
  EXPECT_FALSE(paged.ok());
  EXPECT_NE(paged.status().message().find("unavailable"), std::string::npos)
      << paged.status().ToString();

  // The healthy resident graph is untouched by the neighbor's corruption.
  EXPECT_NE(rig.catalog->Get("g2"), nullptr);
}

// Injected EIO on every page-in read attempt exhausts the bounded retries,
// then the source fallback answers.
TEST_F(SpillFaultTest, PageInEioFallsBackToSourceAfterRetries) {
  const std::string dir = TempPath("spill_eio_a");
  SpillRig rig = SpillOne(dir, "eio_a");

  ASSERT_TRUE(fail::Arm(fail::points::kSpillPageIn, "every:1:eio").ok());
  Result<std::shared_ptr<CatalogEntry>> paged = rig.catalog->GetOrLoad("g1");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_NE(*paged, nullptr);
  EXPECT_GE(fail::Hits(fail::points::kSpillPageIn), 3u);  // retries exhausted
  EXPECT_EQ((*paged)->uid, rig.g1_uid);  // unchanged source: same snapshot
}

// A transient page-in failure (fail-once) is absorbed by the retry loop and
// the ORIGINAL spilled bytes come back — uid preserved, no fallback.
TEST_F(SpillFaultTest, TransientPageInFailureIsRetried) {
  const std::string dir = TempPath("spill_eio_b");
  SpillRig rig = SpillOne(dir, "eio_b");

  ASSERT_TRUE(fail::Arm(fail::points::kSpillPageIn, "once:eio").ok());
  Result<std::shared_ptr<CatalogEntry>> paged = rig.catalog->GetOrLoad("g1");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_NE(*paged, nullptr);
  EXPECT_EQ(fail::Hits(fail::points::kSpillPageIn), 1u);
}

// Spill-write failures must never lose the snapshot: with the write path
// failing, the shed frees nothing, the graph stays resident, and once the
// fault clears a later shed succeeds.
TEST_F(SpillFaultTest, FailedSpillWriteKeepsSnapshotResident) {
  const std::string dir = TempPath("spill_wfail_a");
  const UncertainGraph g1 = testing::RandomSmallGraph(60, 0.2, 411);
  const UncertainGraph g2 = testing::RandomSmallGraph(60, 0.2, 422);
  const std::string p1 = WriteTempGraph(g1, "wfail_src1.snap");
  const std::string p2 = WriteTempGraph(g2, "wfail_src2.snap");

  store::MemoryGovernorOptions governor_options;
  governor_options.budget_bytes =
      std::max(EstimateGraphBytes(g1), EstimateGraphBytes(g2)) + 512;
  store::MemoryGovernor governor(governor_options);
  GraphCatalogOptions options;
  options.spill_dir = dir;
  options.governor = &governor;
  GraphCatalog catalog(options);
  ASSERT_TRUE(catalog.Load("g1", p1).ok());

  // All spill writes fail (every attempt of the bounded retry).
  ASSERT_TRUE(fail::Arm(fail::points::kSpillWrite, "every:1:enospc").ok());
  ASSERT_TRUE(catalog.Load("g2", p2).ok());
  EXPECT_EQ(catalog.spilled_count(), 0u);
  EXPECT_NE(catalog.Get("g1"), nullptr) << "snapshot dropped on failed spill";
  EXPECT_NE(catalog.Get("g2"), nullptr);
  EXPECT_GE(fail::Hits(fail::points::kSpillWrite), 3u);

  // Fault clears: the next pressure wave parks the cold snapshot normally.
  fail::DisarmAll();
  governor.MaybeShed();
  EXPECT_EQ(catalog.spilled_count(), 1u);
}

}  // namespace
}  // namespace vulnds::serve
