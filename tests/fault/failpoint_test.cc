// Failpoint registry semantics: arming policies (once/every/after),
// outcomes, env-var arming, hit counting, and the disabled fast path.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

namespace vulnds::fail {
namespace {

// Every test leaves the process-global registry clean: ctest runs each
// TEST in its own process, but the suite must also pass under a single
// filtered run.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override {
    DisarmAll();
    ::unsetenv("VULNDS_FAILPOINTS");
  }
};

TEST_F(FailpointTest, DisarmedCheckReturnsNone) {
  EXPECT_EQ(Check("journal.append.write"), Outcome::kNone);
  EXPECT_EQ(Check("never.registered.anywhere"), Outcome::kNone);
  EXPECT_EQ(Hits("journal.append.write"), 0u);
}

TEST_F(FailpointTest, OncePolicyFiresExactlyOnce) {
  ASSERT_TRUE(Arm("p.once", "once:eio").ok());
  EXPECT_EQ(Check("p.once"), Outcome::kEio);
  EXPECT_EQ(Check("p.once"), Outcome::kNone);
  EXPECT_EQ(Check("p.once"), Outcome::kNone);
  EXPECT_EQ(Hits("p.once"), 1u);
}

TEST_F(FailpointTest, EveryNthPolicyFiresPeriodically) {
  ASSERT_TRUE(Arm("p.every", "every:3:enospc").ok());
  std::vector<Outcome> seen;
  for (int i = 0; i < 9; ++i) seen.push_back(Check("p.every"));
  // Fires on the 3rd, 6th, 9th check.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(seen[i], (i + 1) % 3 == 0 ? Outcome::kEnospc : Outcome::kNone)
        << "check " << i;
  }
  EXPECT_EQ(Hits("p.every"), 3u);
}

TEST_F(FailpointTest, AfterNPolicyFiresFromNPlusOneOnward) {
  ASSERT_TRUE(Arm("p.after", "after:2:short").ok());
  EXPECT_EQ(Check("p.after"), Outcome::kNone);
  EXPECT_EQ(Check("p.after"), Outcome::kNone);
  EXPECT_EQ(Check("p.after"), Outcome::kShortWrite);
  EXPECT_EQ(Check("p.after"), Outcome::kShortWrite);
  EXPECT_EQ(Hits("p.after"), 2u);
}

TEST_F(FailpointTest, RearmReplacesPolicyAndResetsCounters) {
  ASSERT_TRUE(Arm("p.rearm", "once:eio").ok());
  EXPECT_EQ(Check("p.rearm"), Outcome::kEio);
  ASSERT_TRUE(Arm("p.rearm", "once:enospc").ok());
  EXPECT_EQ(Check("p.rearm"), Outcome::kEnospc);  // fires again after rearm
}

TEST_F(FailpointTest, DisarmStopsInjection) {
  ASSERT_TRUE(Arm("p.disarm", "every:1:eio").ok());
  EXPECT_EQ(Check("p.disarm"), Outcome::kEio);
  Disarm("p.disarm");
  EXPECT_EQ(Check("p.disarm"), Outcome::kNone);
  EXPECT_EQ(Hits("p.disarm"), 1u);  // hit count survives Disarm
}

TEST_F(FailpointTest, InvalidSpecsAreRejected) {
  EXPECT_FALSE(Arm("p", "").ok());
  EXPECT_FALSE(Arm("p", "once").ok());            // missing outcome
  EXPECT_FALSE(Arm("p", "once:sigsegv").ok());    // unknown outcome
  EXPECT_FALSE(Arm("p", "every:0:eio").ok());     // zero period
  EXPECT_FALSE(Arm("p", "every:x:eio").ok());     // non-numeric
  EXPECT_FALSE(Arm("p", "sometimes:eio").ok());   // unknown policy
  EXPECT_FALSE(Arm("p=q", "once:eio").ok());      // '=' breaks env grammar
  EXPECT_FALSE(Arm("p,q", "once:eio").ok());      // ',' breaks env grammar
  EXPECT_EQ(Check("p"), Outcome::kNone);          // nothing ended up armed
}

TEST_F(FailpointTest, ArmFromEnvParsesCommaSeparatedEntries) {
  ::setenv("VULNDS_FAILPOINTS", "a.one=once:eio,b.two=every:2:short", 1);
  ASSERT_TRUE(ArmFromEnv().ok());
  EXPECT_EQ(Check("a.one"), Outcome::kEio);
  EXPECT_EQ(Check("b.two"), Outcome::kNone);
  EXPECT_EQ(Check("b.two"), Outcome::kShortWrite);

  const std::vector<std::string> armed = ArmedPoints();
  // a.one was once: and already fired, so only b.two is still armed.
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0], "b.two=every:2:short");
}

TEST_F(FailpointTest, ArmFromEnvRejectsMalformedEntries) {
  ::setenv("VULNDS_FAILPOINTS", "good=once:eio,bad-entry-no-equals", 1);
  EXPECT_FALSE(ArmFromEnv().ok());
  // Earlier entries stay armed, so the partial configuration is observable.
  EXPECT_EQ(Check("good"), Outcome::kEio);
}

TEST_F(FailpointTest, ArmFromEnvUnsetIsOkNoop) {
  ::unsetenv("VULNDS_FAILPOINTS");
  EXPECT_TRUE(ArmFromEnv().ok());
  EXPECT_TRUE(ArmedPoints().empty());
}

TEST_F(FailpointTest, KnownPointsCoverEveryThreadedSeam) {
  const std::vector<std::string>& known = KnownPoints();
  EXPECT_FALSE(known.empty());
  for (const char* p :
       {points::kJournalOpen, points::kJournalAppendWrite,
        points::kJournalSyncFsync, points::kJournalCompactWrite,
        points::kJournalCompactFsync, points::kJournalCompactRename,
        points::kSnapshotWriteOpen, points::kSnapshotWriteData,
        points::kSnapshotWriteFsync, points::kSnapshotWriteRename,
        points::kSnapshotRead, points::kSpillWrite, points::kSpillPageIn,
        points::kSpillManifestWrite, points::kNetSendWrite}) {
    EXPECT_NE(std::find(known.begin(), known.end(), std::string(p)),
              known.end())
        << p << " missing from KnownPoints()";
  }
}

TEST_F(FailpointTest, InjectedErrnoMapsOutcomes) {
  EXPECT_EQ(InjectedErrno(Outcome::kNone), 0);
  EXPECT_EQ(InjectedErrno(Outcome::kEio), EIO);
  EXPECT_EQ(InjectedErrno(Outcome::kEnospc), ENOSPC);
  EXPECT_EQ(InjectedErrno(Outcome::kShortWrite), EIO);
}

}  // namespace
}  // namespace vulnds::fail
