// Journal compaction: the rewrite preserves every committed version and the
// staged tail, bounds the journal under a threshold, and is crash-safe at
// every injected failure step (write, fsync, rename).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "dyn/journal.h"
#include "dyn/update_manager.h"
#include "graph/graph_io.h"
#include "serve/graph_catalog.h"
#include "testing/test_graphs.h"

namespace vulnds::dyn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class JournalCompactTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

struct Server {
  std::unique_ptr<serve::GraphCatalog> catalog;
  std::unique_ptr<DeltaJournal> journal;
  std::unique_ptr<UpdateManager> updates;
  JournalReplayStats replay;
};

// Opens `journal_path` and replays it into a fresh catalog — the serve
// startup path.
Server Recover(const std::string& journal_path) {
  Server s;
  s.catalog = std::make_unique<serve::GraphCatalog>();
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(journal_path);
  EXPECT_TRUE(journal.ok()) << journal.status().ToString();
  s.journal = journal.MoveValue();
  s.updates =
      std::make_unique<UpdateManager>(s.catalog.get(), s.journal.get());
  Result<JournalReplayStats> replayed = s.updates->ReplayJournal();
  EXPECT_TRUE(replayed.ok()) << replayed.status().ToString();
  s.replay = *replayed;
  return s;
}

// Asserts that replaying `journal_path` reproduces versions v1..vN of "g"
// with the given edge counts, and that the staged tail holds `staged` ops.
void ExpectRecoveredState(const std::string& journal_path,
                          const std::vector<std::size_t>& version_edges,
                          std::size_t staged) {
  Server s = Recover(journal_path);
  Result<std::vector<serve::VersionInfo>> versions = s.updates->Versions("g");
  ASSERT_TRUE(versions.ok()) << versions.status().ToString();
  ASSERT_EQ(versions->size(), version_edges.size() + 1);  // +1 for the base
  for (std::size_t i = 0; i < version_edges.size(); ++i) {
    const serve::VersionInfo& v = (*versions)[i + 1];
    EXPECT_EQ(v.version, i + 1);
    const auto entry = s.catalog->Get(v.catalog_name);
    ASSERT_NE(entry, nullptr) << v.catalog_name;
    EXPECT_EQ(entry->graph.num_edges(), version_edges[i]) << v.catalog_name;
  }
  if (staged > 0) {
    Result<serve::CommitInfo> commit = s.updates->Commit("g");
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
    EXPECT_EQ(commit->ops, staged);
  } else {
    // Nothing staged: commit refuses with InvalidArgument.
    EXPECT_EQ(s.updates->Commit("g").status().code(),
              StatusCode::kInvalidArgument);
  }
}

// Builds a journal with two committed versions (7 then 6 edges over the
// 6-edge paper graph) and one staged op; returns the journal path.
std::string BuildLineage(const std::string& tag, UpdateManager** out_updates,
                         Server* keep) {
  const std::string graph_path = TempPath("compact_" + tag + "_base.snap");
  EXPECT_TRUE(WriteGraphFile(testing::PaperExampleGraph(0.2), graph_path,
                             GraphFileFormat::kBinary)
                  .ok());
  const std::string journal_path = TempPath("compact_" + tag + ".log");
  std::remove(journal_path.c_str());

  keep->catalog = std::make_unique<serve::GraphCatalog>();
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(journal_path);
  EXPECT_TRUE(journal.ok());
  keep->journal = journal.MoveValue();
  keep->updates = std::make_unique<UpdateManager>(keep->catalog.get(),
                                                  keep->journal.get());
  EXPECT_TRUE(keep->catalog->Load("g", graph_path).ok());
  EXPECT_TRUE(keep->updates->AddEdge("g", 4, 0, 0.5).ok());
  EXPECT_TRUE(keep->updates->Commit("g").ok());        // v1: 7 edges
  EXPECT_TRUE(keep->updates->DeleteEdge("g", 4, 0).ok());
  EXPECT_TRUE(keep->updates->Commit("g").ok());        // v2: 6 edges
  EXPECT_TRUE(keep->updates->AddEdge("g", 0, 4, 0.25).ok());  // staged tail
  *out_updates = keep->updates.get();
  return journal_path;
}

TEST_F(JournalCompactTest, CompactionPreservesVersionsAndStagedTail) {
  Server server;
  UpdateManager* updates = nullptr;
  const std::string journal_path = BuildLineage("basic", &updates, &server);

  const std::size_t bytes_before = server.journal->bytes();
  ASSERT_TRUE(updates->CompactJournal().ok());
  EXPECT_EQ(updates->stats().journal_compactions, 1u);
  // The rewrite replaces per-op records with one open + two version records
  // + the single staged op — strictly fewer records than before.
  EXPECT_LT(server.journal->records(), 7u);
  EXPECT_GT(server.journal->bytes(), 0u);
  (void)bytes_before;

  // The compacted journal replays into exactly the pre-compaction state.
  server = Server{};  // close journal fd before reopening the path
  ExpectRecoveredState(journal_path, {7, 6}, 1);
}

TEST_F(JournalCompactTest, ThresholdTriggersCompactionAndBoundsTheJournal) {
  const std::string graph_path = TempPath("compact_bound_base.snap");
  ASSERT_TRUE(WriteGraphFile(testing::PaperExampleGraph(0.2), graph_path,
                             GraphFileFormat::kBinary)
                  .ok());
  const std::string journal_path = TempPath("compact_bound.log");
  std::remove(journal_path.c_str());

  constexpr std::size_t kThreshold = 2048;
  std::size_t max_bytes = 0;
  {
    serve::GraphCatalog catalog;
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    UpdateManager updates(&catalog, journal->get());
    updates.SetJournalCompactThreshold(kThreshold);
    ASSERT_TRUE(catalog.Load("g", graph_path).ok());

    // Many commit cycles; without compaction the journal would grow without
    // bound (every op + commit is a record). The threshold caps it: after
    // each commit the journal is at most threshold + one commit's records.
    for (int cycle = 0; cycle < 40; ++cycle) {
      ASSERT_TRUE(updates.AddEdge("g", 4, 0, 0.5).ok());
      ASSERT_TRUE(updates.DeleteEdge("g", 4, 0).ok());
      ASSERT_TRUE(updates.Commit("g").ok());
      max_bytes = std::max(max_bytes, (*journal)->bytes());
    }
    EXPECT_GE(updates.stats().journal_compactions, 1u);
  }
  // The bound: compaction keeps one version record (~a path + counters) per
  // version. 40 versions of a 6-edge graph compact to well under 8 KiB;
  // without compaction 120 op/commit records would blow far past it.
  EXPECT_LE(max_bytes, kThreshold + 2048) << "journal not bounded";

  // And the compacted journal still replays every version.
  Server s = Recover(journal_path);
  Result<std::vector<serve::VersionInfo>> versions = s.updates->Versions("g");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 41u);  // base + v1..v40
  EXPECT_NE(s.catalog->Get("g@v40"), nullptr);
}

// Crash-safety sweep: inject a fail-once at each compaction step. The
// compaction fails, but the journal must remain complete — a recovery run
// still reproduces every version and the staged tail.
TEST_F(JournalCompactTest, FailedCompactionLeavesJournalIntact) {
  for (const char* point :
       {fail::points::kJournalCompactWrite, fail::points::kJournalCompactFsync,
        fail::points::kJournalCompactRename}) {
    SCOPED_TRACE(point);
    fail::DisarmAll();
    Server server;
    UpdateManager* updates = nullptr;
    const std::string journal_path =
        BuildLineage(std::string("fail_") + point, &updates, &server);

    ASSERT_TRUE(fail::Arm(point, "once:eio").ok());
    const Status compacted = updates->CompactJournal();
    EXPECT_FALSE(compacted.ok()) << point;
    EXPECT_EQ(fail::Hits(point), 1u);
    EXPECT_EQ(updates->stats().journal_compactions, 0u);

    // The old journal is untouched: full recovery still works.
    server = Server{};
    ExpectRecoveredState(journal_path, {7, 6}, 1);
  }
}

// Short write at the compaction temp: a torn prefix really lands in the temp
// file, the live journal must stay whole and the temp must not be adopted.
TEST_F(JournalCompactTest, ShortWriteDuringCompactionIsHarmless) {
  Server server;
  UpdateManager* updates = nullptr;
  const std::string journal_path = BuildLineage("short", &updates, &server);

  ASSERT_TRUE(
      fail::Arm(fail::points::kJournalCompactWrite, "once:short").ok());
  EXPECT_FALSE(updates->CompactJournal().ok());

  // The journal still appends and replays; a later compaction succeeds.
  ASSERT_TRUE(updates->Commit("g").ok());  // commits the staged tail as v3
  ASSERT_TRUE(updates->CompactJournal().ok());
  server = Server{};
  ExpectRecoveredState(journal_path, {7, 6, 7}, 0);
}

// Found by chaos testing: if startup replay cannot read a version side file
// (transient EIO), the in-memory state is missing versions the journal
// still holds. A compaction from that state used to rewrite the journal
// without them — and GC their side files — turning the transient fault into
// permanent loss. Compaction must refuse until a clean replay.
TEST_F(JournalCompactTest, IncompleteReplayBlocksCompaction) {
  Server server;
  UpdateManager* updates = nullptr;
  const std::string journal_path =
      BuildLineage("damaged", &updates, &server);
  ASSERT_TRUE(updates->CompactJournal().ok());  // versions now in side files

  // Replay with every side-file read failing: the lineage is abandoned
  // mid-replay, versions missing from memory.
  ASSERT_TRUE(fail::Arm(fail::points::kSnapshotRead, "every:1:eio").ok());
  server = Server{};
  Server damaged = Recover(journal_path);
  EXPECT_GT(damaged.replay.failed_names, 0u);
  fail::DisarmAll();

  // Explicit compaction refuses; the threshold trigger must not fire one
  // behind our back either.
  const Status refused = damaged.updates->CompactJournal();
  EXPECT_EQ(refused.code(), StatusCode::kInternal) << refused.ToString();
  EXPECT_EQ(damaged.updates->stats().compactions_refused, 1u);
  damaged.updates->SetJournalCompactThreshold(1);  // everything is "over"
  EXPECT_EQ(damaged.updates->stats().journal_compactions, 0u);

  // The journal survived the damaged run untouched: a healthy replay still
  // reconstructs the full lineage, and compaction works again.
  damaged = Server{};
  ExpectRecoveredState(journal_path, {7, 6}, 1);
  Server healthy = Recover(journal_path);
  EXPECT_TRUE(healthy.updates->CompactJournal().ok());
}

// A compacted journal keeps accepting appends through the adopted fd, and
// the combination (version records + fresh appends) replays correctly.
TEST_F(JournalCompactTest, AppendsAfterCompactionReplay) {
  Server server;
  UpdateManager* updates = nullptr;
  const std::string journal_path = BuildLineage("append", &updates, &server);

  ASSERT_TRUE(updates->CompactJournal().ok());
  ASSERT_TRUE(updates->Commit("g").ok());              // v3 from staged tail
  ASSERT_TRUE(updates->AddEdge("g", 4, 0, 0.75).ok());  // new staged tail

  server = Server{};
  ExpectRecoveredState(journal_path, {7, 6, 7}, 1);
}

}  // namespace
}  // namespace vulnds::dyn
