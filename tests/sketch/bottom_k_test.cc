#include "sketch/bottom_k.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace vulnds {
namespace {

TEST(BottomKTest, UnsaturatedReturnsExactCount) {
  BottomKSketch sketch(8, 1);
  for (uint64_t i = 0; i < 5; ++i) sketch.Add(i);
  EXPECT_FALSE(sketch.Saturated());
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 5.0);
}

TEST(BottomKTest, SaturatesAtBk) {
  BottomKSketch sketch(4, 2);
  for (uint64_t i = 0; i < 4; ++i) sketch.Add(i);
  EXPECT_TRUE(sketch.Saturated());
  EXPECT_EQ(sketch.size(), 4);
  sketch.Add(99);
  EXPECT_EQ(sketch.size(), 4);  // never grows past bk
}

TEST(BottomKTest, KthSmallestIsMaxOfRetained) {
  BottomKSketch sketch(3, 3);
  sketch.AddHashed(0.9);
  sketch.AddHashed(0.1);
  sketch.AddHashed(0.5);
  EXPECT_DOUBLE_EQ(sketch.KthSmallest(), 0.9);
  sketch.AddHashed(0.3);  // evicts 0.9
  EXPECT_DOUBLE_EQ(sketch.KthSmallest(), 0.5);
}

TEST(BottomKTest, RetainedHashesSortedAscending) {
  BottomKSketch sketch(4, 4);
  for (double h : {0.8, 0.2, 0.6, 0.4, 0.1}) sketch.AddHashed(h);
  const std::vector<double> r = sketch.RetainedHashes();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
  EXPECT_DOUBLE_EQ(r.front(), 0.1);
  EXPECT_DOUBLE_EQ(r.back(), 0.6);
}

TEST(BottomKTest, EstimateWithinExpectedErrorLargeSet) {
  const int bk = 64;
  const double n = 100000.0;
  BottomKSketch sketch(bk, 7);
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) sketch.Add(i);
  const double est = sketch.EstimateDistinct();
  // CV <= 1/sqrt(bk-2); allow 5 sigma.
  const double tolerance = 5.0 / std::sqrt(bk - 2.0);
  EXPECT_NEAR(est / n, 1.0, tolerance);
}

TEST(BottomKTest, DuplicatesDoNotInflateEstimate) {
  BottomKSketch a(16, 9);
  BottomKSketch b(16, 9);
  for (uint64_t i = 0; i < 1000; ++i) a.Add(i);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 1000; ++i) b.Add(i);
  }
  EXPECT_DOUBLE_EQ(a.EstimateDistinct(), b.EstimateDistinct());
}

TEST(BottomKTest, ErrorFormulaValues) {
  EXPECT_NEAR(BottomKSketch::ExpectedRelativeError(4),
              std::sqrt(2.0 / (M_PI * 2.0)), 1e-12);
  EXPECT_NEAR(BottomKSketch::CoefficientOfVariationBound(18),
              0.25, 1e-12);
  // Error shrinks with bk.
  EXPECT_LT(BottomKSketch::ExpectedRelativeError(64),
            BottomKSketch::ExpectedRelativeError(8));
}

// Property sweep over bk: the estimator converges as bk grows.
class BottomKAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(BottomKAccuracy, RelativeErrorShrinksWithBk) {
  const int bk = GetParam();
  const double truth = 50000.0;
  // Average relative error across independent hash seeds.
  double total_err = 0.0;
  const int trials = 8;
  for (int s = 0; s < trials; ++s) {
    BottomKSketch sketch(bk, 1000 + s);
    for (uint64_t i = 0; i < static_cast<uint64_t>(truth); ++i) sketch.Add(i);
    total_err += std::fabs(sketch.EstimateDistinct() - truth) / truth;
  }
  const double mean_err = total_err / trials;
  // Expected error is sqrt(2/(pi(bk-2))); allow 3x slack for 8 trials.
  EXPECT_LT(mean_err, 3.0 * BottomKSketch::ExpectedRelativeError(bk));
}

INSTANTIATE_TEST_SUITE_P(BkSweep, BottomKAccuracy,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace vulnds
