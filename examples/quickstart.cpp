// Quickstart: build the paper's running example (Figure 3), compute exact
// default probabilities, and ask the detector for the top-2 vulnerable
// nodes with each of the five methods.
//
//   $ ./quickstart

#include <cstdio>

#include "exact/possible_world.h"
#include "graph/builder.h"
#include "vulnds/detector.h"

int main() {
  using namespace vulnds;

  // Figure 3's graph: nodes A..E, all self-risk and diffusion probabilities
  // 0.2 (Example 1 of the paper).
  const double p = 0.2;
  UncertainGraphBuilder builder(5);
  const char* names = "ABCDE";
  for (NodeId v = 0; v < 5; ++v) {
    if (!builder.SetSelfRisk(v, p).ok()) return 1;
  }
  const std::pair<NodeId, NodeId> edges[] = {{0, 1}, {0, 2}, {1, 3},
                                             {1, 4}, {2, 4}, {3, 4}};
  for (const auto& [src, dst] : edges) {
    if (!builder.AddEdge(src, dst, p).ok()) return 1;
  }
  Result<UncertainGraph> graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  // This graph is tiny, so the exact oracle is available.
  Result<std::vector<double>> exact = ExactDefaultProbabilities(*graph);
  if (!exact.ok()) return 1;
  std::printf("Exact default probabilities (possible-world semantics):\n");
  for (NodeId v = 0; v < 5; ++v) {
    std::printf("  p(%c) = %.6f\n", names[v], (*exact)[v]);
  }

  // Run all five detection methods for the top-2 vulnerable nodes.
  std::printf("\nTop-2 vulnerable nodes per method (eps=0.3, delta=0.1):\n");
  for (const Method method : AllMethods()) {
    DetectorOptions options;
    options.method = method;
    options.k = 2;
    options.naive_samples = 20000;
    Result<DetectionResult> result = DetectTopK(*graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", MethodName(method).c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-5s -> {%c, %c}   (samples used: %zu, verified: %zu, "
                "candidates: %zu)\n",
                MethodName(method).c_str(), names[result->topk[0]],
                names[result->topk[1]], result->samples_processed,
                result->verified_count, result->candidate_count);
  }
  std::printf("\nE and D are the most vulnerable: E collects contagion from "
              "every other node,\nD sits one hop behind B. This matches the "
              "paper's Example 2.\n");
  return 0;
}
