// Guaranteed-loan risk monitoring: the paper's motivating scenario.
//
// Simulates a bank's guaranteed-loan book (temporal network, planted risk
// process), trains the probability models on the first year, and runs the
// VulnDS detection pipeline the way the deployed system does monthly:
//   1. estimate self-risk and diffusion probabilities,
//   2. detect the top-k vulnerable enterprises with BSRBK,
//   3. report how many of them actually defaulted in the evaluation year.
//
//   $ ./guaranteed_loan_risk [num_firms]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "common/timer.h"
#include "ml/metrics.h"
#include "risk/loan_simulator.h"
#include "risk/prediction.h"
#include "vulnds/detector.h"
#include "vulnds/topk.h"

int main(int argc, char** argv) {
  using namespace vulnds;

  LoanSimOptions sim;
  sim.num_firms = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 1500;
  sim.seed = 20120601;
  std::printf("Simulating a %zu-firm guaranteed-loan network (2012-2016)...\n",
              sim.num_firms);
  Result<TemporalLoanData> data = SimulateLoanNetwork(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu firms, %zu guarantee relations\n", data->graph.num_nodes(),
              data->graph.num_edges());

  CaseStudyOptions options;
  options.detector_samples = 2000;
  const std::size_t eval_year = 2;  // 2014

  // Scores from the production-style pipeline (estimated probabilities).
  Result<std::vector<double>> bsr_scores =
      ScoreYear(*data, RiskMethod::kBsr, options, eval_year);
  Result<std::vector<double>> wide_scores =
      ScoreYear(*data, RiskMethod::kWide, options, eval_year);
  if (!bsr_scores.ok() || !wide_scores.ok()) {
    std::fprintf(stderr, "scoring failed\n");
    return 1;
  }

  const std::vector<double>& labels = data->labels[eval_year];
  std::printf("\nAUC on %d defaults:\n", data->years[eval_year]);
  std::printf("  BSR  (uncertain-graph detector): %.4f\n",
              AreaUnderRoc(*bsr_scores, labels));
  std::printf("  Wide (feature-only baseline):    %.4f\n",
              AreaUnderRoc(*wide_scores, labels));

  // Watch-list quality: of the top-k flagged firms, how many defaulted?
  TextTable table;
  table.SetHeader({"watch-list size", "BSR hits", "Wide hits", "base rate"});
  double base = 0.0;
  for (const double y : labels) base += y;
  base /= static_cast<double>(labels.size());
  for (const std::size_t k : {25UL, 50UL, 100UL}) {
    const std::vector<NodeId> flagged_bsr = TopKByScore(*bsr_scores, k);
    const std::vector<NodeId> flagged_wide = TopKByScore(*wide_scores, k);
    std::size_t hits_bsr = 0;
    std::size_t hits_wide = 0;
    for (const NodeId v : flagged_bsr) hits_bsr += labels[v] > 0.5;
    for (const NodeId v : flagged_wide) hits_wide += labels[v] > 0.5;
    table.AddRow({std::to_string(k), std::to_string(hits_bsr),
                  std::to_string(hits_wide), TextTable::Num(base * k, 1)});
  }
  std::printf("\nDefaulters caught in the watch list (expected by chance in "
              "the last column):\n%s", table.ToString().c_str());

  std::printf("\nBoth lists concentrate far more defaulters than chance; the "
              "uncertainty-aware\nscores pull ahead as the watch list grows "
              "because they add contagion along\nguarantee chains to the "
              "firm-level risk signal.\n");
  return 0;
}
