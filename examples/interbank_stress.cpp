// Interbank stress testing on a maximum-entropy network.
//
// Reproduces the workflow a regulator would run on the paper's Interbank
// dataset: generate the ME core-periphery network, then sweep the systemic
// stress level (scaling diffusion probabilities) and watch how the set of
// top-k vulnerable banks grows more concentrated around the core.
//
//   $ ./interbank_stress

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "gen/interbank.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "vulnds/detector.h"
#include "vulnds/precision.h"

namespace {

// Returns a copy of `graph` with every diffusion probability scaled by
// `factor` (clamped to 1).
vulnds::UncertainGraph ScaleStress(const vulnds::UncertainGraph& graph,
                                   double factor) {
  using namespace vulnds;
  UncertainGraphBuilder builder(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    (void)builder.SetSelfRisk(v, graph.self_risk(v));
  }
  for (const UncertainEdge& e : graph.edges()) {
    (void)builder.AddEdge(e.src, e.dst, std::min(1.0, e.prob * factor));
  }
  return builder.Build().MoveValue();
}

}  // namespace

int main() {
  using namespace vulnds;

  InterbankOptions options;  // the paper's 125-bank / 249-loan network
  options.probs.self_risk = ProbabilityModel::Beta(1.5, 12.0);
  options.probs.diffusion = ProbabilityModel::Beta(2.0, 5.0);
  Result<UncertainGraph> network = GenerateInterbank(options, 17);
  if (!network.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  const GraphStats stats = ComputeStats(*network);
  std::printf("Interbank network: %zu banks, %zu loans, max degree %zu\n",
              stats.num_nodes, stats.num_edges, stats.max_degree);

  const std::size_t k = 10;
  DetectorOptions detect;
  detect.method = Method::kBsr;  // BSR reports calibrated probabilities
  detect.k = k;

  // Baseline (stress 1.0) watch list for overlap comparison.
  Result<DetectionResult> base = DetectTopK(*network, detect);
  if (!base.ok()) return 1;

  TextTable table;
  table.SetHeader({"stress", "mean top-k p(default)", "overlap with baseline",
                   "verified k'", "|B|"});
  for (const double stress : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    const UncertainGraph stressed = ScaleStress(*network, stress);
    Result<DetectionResult> result = DetectTopK(stressed, detect);
    if (!result.ok()) return 1;
    double mean_p = 0.0;
    for (const double s : result->scores) mean_p += s;
    mean_p /= static_cast<double>(result->scores.size());
    table.AddRow({TextTable::Num(stress, 1), TextTable::Num(mean_p, 4),
                  TextTable::Num(PrecisionAtK(result->topk, base->topk), 2),
                  std::to_string(result->verified_count),
                  std::to_string(result->candidate_count)});
  }
  std::printf("\nStress sweep (diffusion probabilities scaled):\n%s",
              table.ToString().c_str());
  std::printf("\nAs stress rises, default probabilities climb and the "
              "vulnerable set shifts toward\nbanks exposed to the "
              "money-center core - the contagion channel dominates.\n");
  return 0;
}
