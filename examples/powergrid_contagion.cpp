// Power-grid cascading failure: the paper's second motivating domain.
//
// A transmission grid is modeled as a small-world uncertain graph:
// stations fail on their own (weather, equipment: ps) and failures
// propagate to neighbors with line-dependent probability. The example
// finds the k most vulnerable stations, shows the pruning statistics of
// the bound machinery, and validates the result against a long
// Monte-Carlo run.
//
//   $ ./powergrid_contagion [num_stations]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "vulnds/bounds.h"
#include "vulnds/candidate_reduction.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"
#include "vulnds/precision.h"

int main(int argc, char** argv) {
  using namespace vulnds;

  const std::size_t stations =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5000;
  // Small-world grid: local ring wiring with some long-range ties. Station
  // self-failure is rare; line propagation is moderately likely.
  GraphProbOptions probs;
  probs.self_risk = ProbabilityModel::Beta(1.2, 20.0);   // mean ~5.7%
  probs.diffusion = ProbabilityModel::Beta(2.0, 4.0);    // mean ~33%
  Result<UncertainGraph> grid = WattsStrogatz(stations, 3, 0.1, probs, 7);
  if (!grid.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("Grid: %zu stations, %zu lines\n", grid->num_nodes(),
              grid->num_edges());

  const std::size_t k = std::max<std::size_t>(1, stations / 100);  // top 1%

  // Show what the bound machinery prunes before any sampling happens.
  const auto lower = LowerBounds(*grid, 2);
  const auto upper = UpperBounds(*grid, 2);
  if (!lower.ok() || !upper.ok()) return 1;
  const auto reduced = ReduceCandidates(*lower, *upper, k);
  if (!reduced.ok()) return 1;
  std::printf("\nOrder-2 bounds for k = %zu:\n", k);
  std::printf("  verified without sampling (k'): %zu\n", reduced->num_verified());
  std::printf("  candidate set |B|:              %zu of %zu nodes (%.1f%%)\n",
              reduced->candidates.size(), grid->num_nodes(),
              100.0 * static_cast<double>(reduced->candidates.size()) /
                  static_cast<double>(grid->num_nodes()));

  // Detect with BSRBK and time it.
  ThreadPool pool;
  DetectorOptions options;
  options.method = Method::kBsr;  // calibrated probability estimates
  options.k = k;
  options.pool = &pool;
  WallTimer timer;
  Result<DetectionResult> result = DetectTopK(*grid, options);
  if (!result.ok()) return 1;
  const double detect_seconds = timer.Seconds();
  std::printf("\nBSR found the top-%zu in %.3f s (%zu of %zu budgeted "
              "samples, early stop: %s)\n",
              k, detect_seconds, result->samples_processed,
              result->samples_budget, result->early_stopped ? "yes" : "no");

  // Validate against a 20000-world Monte-Carlo reference.
  timer.Reset();
  const GroundTruth gt = ComputeGroundTruth(*grid, 20000, 99, &pool);
  const double gt_seconds = timer.Seconds();
  const double precision = PrecisionAtK(result->topk, gt.TopK(k));
  std::printf("Reference run: %.3f s for 20000 worlds; precision@%zu = %.3f "
              "(%.0fx faster)\n",
              gt_seconds, k, precision, gt_seconds / std::max(1e-9, detect_seconds));

  TextTable table;
  table.SetHeader({"rank", "station", "estimated p(fail)", "reference p(fail)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, result->topk.size()); ++i) {
    const NodeId v = result->topk[i];
    table.AddRow({std::to_string(i + 1), std::to_string(v),
                  TextTable::Num(result->scores[i], 4),
                  TextTable::Num(gt.probabilities[v], 4)});
  }
  std::printf("\nMost vulnerable stations:\n%s", table.ToString().c_str());
  return 0;
}
