// Table 2: details of experimental datasets.
//
// Prints, for every registry dataset, the generated statistics next to the
// published targets. In full mode the node/edge counts match Table 2
// exactly by construction; degree shape (avg, max) tracks the targets.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "graph/graph_stats.h"

int main() {
  using namespace vulnds;
  using namespace vulnds::bench;

  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Table 2: dataset statistics");

  TextTable table;
  table.SetHeader({"Dataset", "#Nodes", "#Edges", "AvgDeg", "MaxDeg",
                   "paper #Nodes", "paper #Edges", "paper AvgDeg",
                   "paper MaxDeg"});
  for (const DatasetId id : AllDatasets()) {
    const DatasetSpec spec = GetDatasetSpec(id);
    Result<UncertainGraph> graph =
        MakeDataset(id, profile.DatasetScale(id), 42);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    const GraphStats s = ComputeStats(*graph);
    table.AddRow({spec.name, std::to_string(s.num_nodes),
                  std::to_string(s.num_edges), TextTable::Num(s.avg_degree, 2),
                  std::to_string(s.max_degree), std::to_string(spec.num_nodes),
                  std::to_string(spec.num_edges),
                  TextTable::Num(spec.avg_degree, 2),
                  std::to_string(spec.max_degree)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
