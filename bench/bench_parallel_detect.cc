// Parallel cold-detect benchmark and regression gate.
//
// Measures a COLD BSRBK detection (no DetectionContext, no result cache —
// the serving layer's worst case) on bundled datasets, serial vs a 4-worker
// pool, and a BSR run (reverse-sampling refinement) the same way. Because
// the wave-parallel bottom-k fold is bit-identical to the serial loop, the
// two runs must return the same ranking — verified on every repeat — so the
// only thing allowed to change is the wall time.
//
// Gate: the BSRBK speedup — median over repeats per configuration
// (tolerates up to two outlier repeats of five), aggregated as the median
// across datasets — must be >= 2x at 4 threads. Enforced only when the
// host has >= 4 hardware threads (a 1-core CI runner cannot demonstrate
// any parallel speedup); VULNDS_BENCH_GATE=0 demotes the gate to
// report-only for noisy environments. The JSON record says whether the
// gate was enforced.
//
// SIMD phase: the same cold BSRBK workload serial, kernels pinned scalar vs
// avx2, on the dense datasets (Wiki, Facebook, Bitcoin) where the batched
// coin evaluation dominates — on average-degree-2 graphs an adjacency run
// is a single half-empty vector block and the ratio is structurally ~1, so
// measuring those would gate on Amdahl's law, not on the kernels. Both runs
// must return identical rankings, scores and samples_processed (the kernels
// are bit-identical by contract), and the median avx2-vs-scalar speedup
// must be >= 1.5x — enforced only on hosts with AVX2 (elsewhere the avx2
// tier degrades to scalar and the ratio is ~1 by construction). This gate
// is thread-count independent, so it enforces even on 1-core runners.
//
// --json writes BENCH_parallel_detect.json for the CI perf trajectory.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "simd/dispatch.h"
#include "vulnds/detector.h"

namespace {

using namespace vulnds;
using namespace vulnds::bench;

constexpr std::size_t kRepeats = 5;
constexpr std::size_t kGateThreads = 4;
constexpr double kGateSpeedup = 2.0;
constexpr double kSimdGateSpeedup = 1.5;

// Median cold-detect seconds over kRepeats (the acceptance criterion's
// estimator; five repeats tolerate two noisy outliers); also cross-checks
// that every run returns the ranking of `reference` (determinism is part
// of the contract being benchmarked).
double MedianColdSeconds(const UncertainGraph& graph, DetectorOptions options,
                         ThreadPool* pool, const DetectionResult* reference,
                         DetectionResult* out) {
  options.pool = pool;
  std::vector<double> seconds;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    WallTimer timer;
    Result<DetectionResult> result = DetectTopK(graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "detect failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    seconds.push_back(timer.Seconds());
    if (reference != nullptr &&
        (result->topk != reference->topk ||
         result->scores != reference->scores ||
         result->samples_processed != reference->samples_processed)) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: ranking diverged across "
                           "execution knobs\n");
      std::exit(1);
    }
    if (out != nullptr && r == 0) *out = result.MoveValue();
  }
  return Percentile(std::move(seconds), 50.0);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Parallel cold detection (1 vs 4 threads)");
  BenchJson json("parallel_detect", JsonRequested(argc, argv));

  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_disabled = GateDisabled();
  const bool enforce = hw >= kGateThreads && !gate_disabled;
  std::printf("hardware threads: %u — %s\n\n", hw,
              enforce ? "gate ENFORCED"
              : gate_disabled
                  ? "gate reported but NOT enforced (VULNDS_BENCH_GATE=0)"
                  : "gate reported but NOT enforced (< 4 cores)");
  json.Add("hardware_threads", static_cast<std::size_t>(hw));
  json.Add("gate_enforced", enforce);

  // The SIMD gate compares forced kernel tiers on one thread; it only
  // demonstrates anything where the avx2 tier actually runs AVX2.
  const bool simd_enforce = simd::Avx2Available() && !gate_disabled;
  std::printf("avx2: %s — simd gate %s\n\n",
              simd::Avx2Available() ? "available" : "unavailable",
              simd_enforce ? "ENFORCED" : "reported but NOT enforced");
  json.Add("avx2_available", simd::Avx2Available());
  json.Add("simd_gate_enforced", simd_enforce);

  ThreadPool serial_pool(1);
  ThreadPool wide_pool(kGateThreads);

  TextTable table;
  table.SetHeader({"dataset", "n", "m", "BSRBK 1t", "BSRBK 4t", "speedup",
                   "BSR 1t", "BSR 4t", "speedup"});
  std::vector<double> bsrbk_speedups;

  // Workloads where the sampling stage (the parallel fraction) dominates
  // the serial bound computation. On these generators the strongest
  // candidates default in nearly every world, so the early stop fires after
  // roughly bk samples — bk is therefore the knob that sets how much cold
  // work a BSRBK query does, and a high bk keeps thousands of worlds in
  // flight (~97% of the cold wall time). A too-small workload would measure
  // ParallelFor synchronization instead of the detector.
  const std::vector<DatasetId> datasets = {DatasetId::kWiki, DatasetId::kP2P,
                                           DatasetId::kCitation};
  for (const DatasetId id : datasets) {
    const DatasetSpec spec = GetDatasetSpec(id);
    const double scale =
        profile.full ? 1.0
                     : std::min(1.0, 30000.0 / static_cast<double>(spec.num_nodes));
    Result<UncertainGraph> graph = MakeDataset(id, scale, 42);
    if (!graph.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }

    DetectorOptions options;
    options.method = Method::kBsrbk;
    options.k = std::max<std::size_t>(1, graph->num_nodes() * 3 / 100);
    options.eps = 0.1;   // a tight budget keeps the stream long
    options.bk = 1024;   // a high bk defers the early stop (~bk worlds)

    DetectionResult reference;
    const double bsrbk_1t =
        MedianColdSeconds(*graph, options, &serial_pool, nullptr, &reference);
    const double bsrbk_4t =
        MedianColdSeconds(*graph, options, &wide_pool, &reference, nullptr);
    const double bsrbk_speedup = bsrbk_1t / std::max(1e-12, bsrbk_4t);
    bsrbk_speedups.push_back(bsrbk_speedup);

    options.method = Method::kBsr;
    DetectionResult bsr_reference;
    const double bsr_1t = MedianColdSeconds(*graph, options, &serial_pool,
                                            nullptr, &bsr_reference);
    const double bsr_4t =
        MedianColdSeconds(*graph, options, &wide_pool, &bsr_reference, nullptr);
    const double bsr_speedup = bsr_1t / std::max(1e-12, bsr_4t);

    const std::string name = DatasetName(id);
    table.AddRow({name, std::to_string(graph->num_nodes()),
                  std::to_string(graph->num_edges()),
                  TextTable::Num(bsrbk_1t, 4), TextTable::Num(bsrbk_4t, 4),
                  TextTable::Num(bsrbk_speedup, 2) + "x",
                  TextTable::Num(bsr_1t, 4), TextTable::Num(bsr_4t, 4),
                  TextTable::Num(bsr_speedup, 2) + "x"});
    json.Add(name + "_bsrbk_serial_s", bsrbk_1t);
    json.Add(name + "_bsrbk_4t_s", bsrbk_4t);
    json.Add(name + "_bsrbk_speedup", bsrbk_speedup);
    json.Add(name + "_bsr_speedup", bsr_speedup);
  }
  std::printf("%s\n", table.ToString().c_str());

  // SIMD phase: cold BSRBK, one thread, kernel tier forced scalar vs avx2,
  // on the dense datasets where coin evaluation dominates (see the file
  // comment — on degree-2 graphs the ratio measures Amdahl's law, not the
  // kernels). The reference comparison inside MedianColdSeconds enforces
  // bit-identity of rankings, scores and samples_processed across tiers;
  // the ratio is the pure kernel win.
  TextTable simd_table;
  simd_table.SetHeader({"dataset", "n", "m", "avg deg", "scalar 1t",
                        "avx2 1t", "speedup"});
  std::vector<double> simd_speedups;
  const std::vector<DatasetId> simd_datasets = {
      DatasetId::kWiki, DatasetId::kFacebook, DatasetId::kBitcoin};
  for (const DatasetId id : simd_datasets) {
    const DatasetSpec spec = GetDatasetSpec(id);
    const double scale =
        profile.full ? 1.0
                     : std::min(1.0, 30000.0 / static_cast<double>(spec.num_nodes));
    Result<UncertainGraph> graph = MakeDataset(id, scale, 42);
    if (!graph.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }

    DetectorOptions options;
    options.method = Method::kBsrbk;
    options.k = std::max<std::size_t>(1, graph->num_nodes() * 3 / 100);
    options.eps = 0.1;
    options.bk = 1024;
    options.simd_mode = simd::SimdMode::kScalar;
    DetectionResult scalar_reference;
    const double simd_scalar_1t = MedianColdSeconds(
        *graph, options, &serial_pool, nullptr, &scalar_reference);
    options.simd_mode = simd::SimdMode::kAvx2;
    const double simd_avx2_1t = MedianColdSeconds(
        *graph, options, &serial_pool, &scalar_reference, nullptr);
    const double simd_speedup = simd_scalar_1t / std::max(1e-12, simd_avx2_1t);
    simd_speedups.push_back(simd_speedup);

    const std::string name = DatasetName(id);
    const double avg_deg = graph->num_nodes() == 0
                               ? 0.0
                               : static_cast<double>(graph->num_edges()) /
                                     static_cast<double>(graph->num_nodes());
    simd_table.AddRow({name, std::to_string(graph->num_nodes()),
                       std::to_string(graph->num_edges()),
                       TextTable::Num(avg_deg, 1),
                       TextTable::Num(simd_scalar_1t, 4),
                       TextTable::Num(simd_avx2_1t, 4),
                       TextTable::Num(simd_speedup, 2) + "x"});
    json.Add(name + "_simd_scalar_s", simd_scalar_1t);
    json.Add(name + "_simd_avx2_s", simd_avx2_1t);
    json.Add(name + "_simd_speedup", simd_speedup);
  }
  std::printf("%s\n", simd_table.ToString().c_str());

  const double median_speedup = Percentile(bsrbk_speedups, 50.0);
  std::printf("median BSRBK cold-detect speedup at %zu threads: %.2fx "
              "(gate: >= %.1fx)\n",
              kGateThreads, median_speedup, kGateSpeedup);
  json.Add("bsrbk_speedup_median", median_speedup);
  const bool passed = median_speedup >= kGateSpeedup;
  json.Add("gate_passed", passed);

  const double simd_median = Percentile(simd_speedups, 50.0);
  std::printf("median BSRBK cold-detect avx2-vs-scalar speedup: %.2fx "
              "(gate: >= %.1fx)\n",
              simd_median, kSimdGateSpeedup);
  json.Add("simd_speedup_median", simd_median);
  const bool simd_passed = simd_median >= kSimdGateSpeedup;
  json.Add("simd_gate_passed", simd_passed);
  if (!json.Write()) return 1;

  if (enforce && !passed) {
    std::fprintf(stderr,
                 "GATE FAILED: %.2fx < %.1fx — the parallel bottom-k path "
                 "regressed\n",
                 median_speedup, kGateSpeedup);
    return 1;
  }
  if (simd_enforce && !simd_passed) {
    std::fprintf(stderr,
                 "GATE FAILED: %.2fx < %.1fx — the AVX2 coin kernels lost "
                 "their edge over scalar\n",
                 simd_median, kSimdGateSpeedup);
    return 1;
  }
  return 0;
}
