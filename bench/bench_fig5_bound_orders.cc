// Figure 5: tuning the order of the lower/upper bounds.
//
// For each of the four effectiveness datasets, prints the 5x5 candidate-set
// size grid (|B| after Algorithm 4 with k = 5% |V|) for lower bound order
// 1..5 x upper bound order 1..5. The paper's heatmap shows a steep drop
// from order 1 to 2 and a plateau after; the same shape appears here.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "vulnds/bounds.h"
#include "vulnds/candidate_reduction.h"

int main() {
  using namespace vulnds;
  using namespace vulnds::bench;

  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Figure 5: bound-order tuning (candidate size)");

  constexpr int kMaxOrder = 5;
  for (const DatasetId id : EffectivenessDatasets()) {
    Result<UncertainGraph> graph = MakeDataset(id, profile.DatasetScale(id), 42);
    if (!graph.ok()) return 1;
    const std::size_t k = std::max<std::size_t>(1, graph->num_nodes() * 5 / 100);

    // Precompute all orders once.
    std::vector<std::vector<double>> lower(kMaxOrder + 1);
    std::vector<std::vector<double>> upper(kMaxOrder + 1);
    for (int order = 1; order <= kMaxOrder; ++order) {
      auto lo = LowerBounds(*graph, order);
      auto up = UpperBounds(*graph, order);
      if (!lo.ok() || !up.ok()) return 1;
      lower[order] = lo.MoveValue();
      upper[order] = up.MoveValue();
    }

    TextTable table;
    std::vector<std::string> header = {"lower\\upper"};
    for (int uo = 1; uo <= kMaxOrder; ++uo) header.push_back(std::to_string(uo));
    table.SetHeader(header);
    for (int lo = 1; lo <= kMaxOrder; ++lo) {
      std::vector<std::string> row = {std::to_string(lo)};
      for (int uo = 1; uo <= kMaxOrder; ++uo) {
        const auto reduced = ReduceCandidates(lower[lo], upper[uo], k);
        if (!reduced.ok()) return 1;
        row.push_back(std::to_string(reduced->candidates.size()));
      }
      table.AddRow(row);
    }
    std::printf("[%s]  |B| for k = %zu (n = %zu)\n%s\n", DatasetName(id).c_str(),
                k, graph->num_nodes(), table.ToString().c_str());
  }
  return 0;
}
