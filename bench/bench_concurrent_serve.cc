// Concurrent serving: aggregate cached-query throughput and latency
// percentiles as the number of concurrent sessions grows, over one shared
// QueryEngine fronted by ServeServer sessions.
//
// Sessions are prewarmed so every timed request is a result-cache hit: the
// scaling measured here is the serve stack's (sharded catalog, per-request
// formatting, engine cache lock), not the detectors'. Every response is
// checked bit-identical to its single-session counterpart modulo the
// wall-clock time= token — the only nondeterministic byte in the protocol.
//
// A second phase runs a cached storm — 8 sessions, every request a result
// cache hit on its own key — against two otherwise identical engines: one
// with a single-shard (single-mutex) result cache, one with the sharded
// default. The only difference between the runs is result-cache lock
// contention, which is exactly what cache sharding exists to cut.
//
// With --socket a third phase drives 8 concurrent TCP connections through
// the src/net front end against a zero-clock engine: the time= token is
// pinned to 0, so every socket response is checked byte-exact against the
// stdin front's cached block — modulo NOTHING — while round-trip qps and
// p50/p99 are timed from the client side of a real socket.
//
// Gates (>=4-core hosts): 8 sessions must aggregate >=3x the
// single-session throughput, and the sharded-cache storm must reach at
// least the single-mutex storm's throughput. On narrower hosts the
// throughput gates are reported but not enforced (VULNDS_BENCH_GATE=0
// demotes them everywhere); bit-identity is always enforced.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/serve_server.h"

namespace {

using namespace vulnds;

constexpr std::size_t kGraphs = 8;
constexpr int kRepeats = 1500;       // timed cached queries per session
constexpr std::size_t kStormSessions = 8;
constexpr int kStormRepeats = 1500;  // cached queries per storm session
constexpr std::size_t kSocketClients = 8;
constexpr int kSocketRepeats = 400;  // round trips per TCP client

std::string StripTimes(const std::string& text) {
  std::istringstream in(text);
  std::string line, rebuilt;
  while (std::getline(in, line)) {
    rebuilt += serve::StripWallClockTokens(line) + "\n";
  }
  return rebuilt;
}

struct SessionRun {
  std::vector<double> latencies;  // seconds per request
  std::string output;
};

// The in-process histogram quantile must agree with the externally timed
// percentile up to bucket quantization: the latency ladder's widest edge
// ratio is 2.5x, so interpolation can sit a small factor off the exact
// sample percentile; a 10us absolute floor absorbs timer noise on
// single-digit-microsecond cached hits.
bool QuantilesAgree(double hist_us, double external_us) {
  return hist_us <= 3.0 * external_us + 10.0 &&
         external_us <= 3.0 * hist_us + 10.0;
}

// Drives kStormSessions concurrent sessions of kStormRepeats cached
// queries each over `engine` (session s hammers graph s % kGraphs), checks
// every response against its expected cached block, and returns aggregate
// qps. Sets *ok to false when any transcript diverges.
double RunCachedStorm(vulnds::serve::QueryEngine& engine,
                      const std::vector<std::string>& queries,
                      const std::vector<std::string>& expected_blocks,
                      bool* ok) {
  vulnds::serve::ServeServer server(&engine);
  // Prewarm: one cold detect per graph fills this engine's result cache.
  {
    vulnds::serve::ServeSession session = server.NewSession();
    for (const std::string& query : queries) {
      std::ostringstream warm;
      session.HandleLine(query, warm);
    }
  }
  std::vector<std::string> outputs(kStormSessions);
  std::vector<std::thread> threads;
  vulnds::WallTimer wall;
  for (std::size_t s = 0; s < kStormSessions; ++s) {
    threads.emplace_back([&, s] {
      vulnds::serve::ServeSession session = server.NewSession();
      std::ostringstream out;
      const std::string& query = queries[s % kGraphs];
      for (int r = 0; r < kStormRepeats; ++r) session.HandleLine(query, out);
      outputs[s] = out.str();
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.Seconds();
  for (std::size_t s = 0; s < kStormSessions; ++s) {
    std::string expected;
    for (int r = 0; r < kStormRepeats; ++r) {
      expected += expected_blocks[s % kGraphs];
    }
    if (StripTimes(outputs[s]) != expected) {
      *ok = false;
      std::fprintf(stderr, "FAIL: storm session %zu diverged from its "
                           "single-session transcript\n", s);
    }
  }
  return static_cast<double>(kStormSessions * kStormRepeats) / elapsed;
}

// Reads exactly `want` more bytes into *out (deadline-bounded).
bool RecvExact(int fd, std::size_t want, std::string* out) {
  char buf[4096];
  while (want > 0) {
    std::size_t got = 0;
    if (vulnds::net::RecvSome(fd, buf, std::min(sizeof(buf), want), 30'000,
                              &got) != vulnds::net::IoStatus::kOk) {
      return false;
    }
    out->append(buf, got);
    want -= got;
  }
  return true;
}

// The --socket phase: kSocketClients concurrent TCP connections through a
// real NetServer over a ZERO-CLOCK engine (time= renders as time=0), so
// every response must be byte-exact against the stdin front's cached block
// with no stripping at all. Round trips are timed from the client side.
// Returns false when any transcript diverges.
bool RunSocketPhase(vulnds::serve::GraphCatalog* catalog,
                    const std::vector<std::string>& queries,
                    bench::BenchJson* json) {
  using namespace vulnds;
  serve::QueryEngineOptions zero_options;
  zero_options.clock = [] { return int64_t{0}; };
  serve::QueryEngine engine(catalog, zero_options);

  // The stdin-front oracle: cold detect per graph, then the cached block
  // every socket response must reproduce byte for byte.
  std::vector<std::string> blocks(kGraphs);
  {
    serve::ServeSession session(&engine);
    for (std::size_t g = 0; g < kGraphs; ++g) {
      std::ostringstream warm;
      session.HandleLine(queries[g], warm);
      std::ostringstream cached;
      session.HandleLine(queries[g], cached);
      blocks[g] = cached.str();
    }
  }

  net::NetServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.max_connections = kSocketClients + 4;
  net::NetServer server(&engine, nullptr, options);
  if (const Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "socket phase: %s\n", st.message().c_str());
    return false;
  }
  const int port = server.tcp_port();

  struct ClientRun {
    std::vector<double> latencies;
    bool identical = true;
    bool io_ok = true;
  };
  std::vector<ClientRun> runs(kSocketClients);
  std::vector<std::thread> clients;
  WallTimer wall;
  for (std::size_t c = 0; c < kSocketClients; ++c) {
    clients.emplace_back([&, c] {
      ClientRun& run = runs[c];
      Result<net::Socket> sock = net::DialTcp("127.0.0.1", port);
      if (!sock.ok()) {
        run.io_ok = false;
        return;
      }
      const std::string request = queries[c % kGraphs] + "\n";
      const std::string& block = blocks[c % kGraphs];
      run.latencies.reserve(kSocketRepeats);
      for (int r = 0; r < kSocketRepeats; ++r) {
        WallTimer timer;
        if (net::SendAll(sock->fd(), request.data(), request.size(),
                         30'000) != net::IoStatus::kOk) {
          run.io_ok = false;
          return;
        }
        std::string response;
        if (!RecvExact(sock->fd(), block.size(), &response)) {
          run.io_ok = false;
          return;
        }
        run.latencies.push_back(timer.Seconds());
        if (response != block) run.identical = false;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = wall.Seconds();
  server.BeginDrain();
  server.Join();

  bool identical = true;
  std::vector<double> latencies;
  for (std::size_t c = 0; c < kSocketClients; ++c) {
    if (!runs[c].io_ok) {
      identical = false;
      std::fprintf(stderr, "FAIL: socket client %zu hit an I/O error\n", c);
    } else if (!runs[c].identical) {
      identical = false;
      std::fprintf(stderr, "FAIL: socket client %zu diverged from the stdin "
                           "front's transcript\n", c);
    }
    latencies.insert(latencies.end(), runs[c].latencies.begin(),
                     runs[c].latencies.end());
  }
  const double qps =
      static_cast<double>(kSocketClients * kSocketRepeats) / elapsed;
  const double p50_us = bench::Percentile(latencies, 50) * 1e6;
  const double p99_us = bench::Percentile(latencies, 99) * 1e6;
  std::printf("socket phase: %zu TCP clients x %d round trips: %.0f qps, "
              "p50 %.1fus, p99 %.1fus, byte-exact (modulo nothing): %s\n",
              kSocketClients, kSocketRepeats, qps, p50_us, p99_us,
              identical ? "yes" : "NO");
  json->Add("socket_qps_c8", qps);
  json->Add("socket_p50_us", p50_us);
  json->Add("socket_p99_us", p99_us);
  json->Add("socket_bit_identical", identical);
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::GetProfile();
  bench::PrintProfileBanner(profile, "concurrent serve (sessions over one engine)");
  bench::BenchJson json("concurrent_serve", bench::JsonRequested(argc, argv));
  bool socket_phase = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0) socket_phase = true;
  }

  serve::GraphCatalog catalog;
  serve::QueryEngine engine(&catalog);
  serve::ServeServer server(&engine);

  // One modest graph per session slot; distinct seeds so shards and cache
  // lines are genuinely distinct.
  const DatasetSpec spec = GetDatasetSpec(DatasetId::kCitation);
  const double scale =
      std::min(1.0, 800.0 / static_cast<double>(spec.num_nodes));
  std::vector<std::string> queries;
  for (std::size_t g = 0; g < kGraphs; ++g) {
    Result<UncertainGraph> graph = MakeDataset(DatasetId::kCitation, scale, 42 + g);
    if (!graph.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    const std::size_t k = std::max<std::size_t>(1, graph->num_nodes() / 50);
    const std::string name = "g" + std::to_string(g);
    if (!catalog.Put(name, graph.MoveValue()).ok()) return 1;
    queries.push_back("detect " + name + " " + std::to_string(k) +
                      " BSRBK seed=7");
  }

  // Prewarm (the one cold detect per graph) and capture the per-graph
  // cached response block each timed request must reproduce.
  std::vector<std::string> expected_blocks(kGraphs);
  {
    serve::ServeSession session = server.NewSession();
    for (std::size_t g = 0; g < kGraphs; ++g) {
      std::ostringstream warm;
      session.HandleLine(queries[g], warm);  // cold
      std::ostringstream cached;
      session.HandleLine(queries[g], cached);  // cached=1 from here on
      expected_blocks[g] = StripTimes(cached.str());
    }
  }

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::printf("graphs: %zu (~%zu nodes each), %d cached queries/session, "
              "%zu hardware threads\n\n",
              kGraphs, static_cast<std::size_t>(spec.num_nodes * scale),
              kRepeats, hw);

  TextTable table;
  table.SetHeader({"sessions", "qps", "p50 (us)", "p99 (us)", "scaling"});
  double qps1 = 0.0, qps8 = 0.0;
  bool all_identical = true;
  std::vector<double> all_latencies;  // every timed request, all phases
  for (const std::size_t sessions : {1u, 2u, 4u, 8u}) {
    std::vector<SessionRun> runs(sessions);
    std::vector<std::thread> threads;
    WallTimer wall;
    for (std::size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        serve::ServeSession session = server.NewSession();
        SessionRun& run = runs[s];
        run.latencies.reserve(kRepeats);
        std::ostringstream out;
        const std::string& query = queries[s % kGraphs];
        for (int r = 0; r < kRepeats; ++r) {
          WallTimer timer;
          session.HandleLine(query, out);
          run.latencies.push_back(timer.Seconds());
        }
        run.output = out.str();
      });
    }
    for (std::thread& t : threads) t.join();
    const double elapsed = wall.Seconds();

    // Bit-identity: each session's transcript is its expected cached block
    // repeated, modulo time=.
    for (std::size_t s = 0; s < sessions; ++s) {
      std::string expected;
      for (int r = 0; r < kRepeats; ++r) expected += expected_blocks[s % kGraphs];
      if (StripTimes(runs[s].output) != expected) {
        all_identical = false;
        std::fprintf(stderr,
                     "FAIL: session %zu of %zu diverged from its "
                     "single-session transcript\n",
                     s, sessions);
      }
    }

    std::vector<double> latencies;
    for (const SessionRun& run : runs) {
      latencies.insert(latencies.end(), run.latencies.begin(),
                       run.latencies.end());
    }
    all_latencies.insert(all_latencies.end(), latencies.begin(),
                         latencies.end());
    const double qps = static_cast<double>(sessions * kRepeats) / elapsed;
    const double p50 = bench::Percentile(latencies, 50);
    const double p99 = bench::Percentile(latencies, 99);
    if (sessions == 1) qps1 = qps;
    if (sessions == 8) qps8 = qps;
    table.AddRow({std::to_string(sessions), TextTable::Num(qps, 0),
                  TextTable::Num(p50 * 1e6, 1), TextTable::Num(p99 * 1e6, 1),
                  TextTable::Num(qps1 > 0 ? qps / qps1 : 0.0, 2) + "x"});
    json.Add("qps_s" + std::to_string(sessions), qps);
    json.Add("p50_ms_s" + std::to_string(sessions), p50 * 1e3);
    json.Add("p99_ms_s" + std::to_string(sessions), p99 * 1e3);
  }
  std::printf("%s\n", table.ToString().c_str());

  const double scaling = qps1 > 0 ? qps8 / qps1 : 0.0;
  const serve::ServerStatsSnapshot stats = server.stats();
  std::printf("sessions: %zu, requests: %zu, errors: %zu\n",
              stats.sessions_started, stats.requests, stats.errors);
  std::printf("aggregate scaling at 8 sessions: %.2fx\n", scaling);

  // Cross-check the serving stack's own latency histogram against the
  // externally timed percentiles: the per-verb session histogram observed
  // exactly the HandleLine calls the WallTimer wrapped, so its in-process
  // p50/p99 (Histogram::Quantile, the estimator Prometheus applies
  // server-side) must land within bucket-quantization tolerance of the
  // exact sample percentiles. Divergence means the instrumentation drifted
  // from what it claims to measure.
  obs::Histogram* session_hist = engine.registry()->GetHistogram(
      "vulnds_server_request_micros", "", obs::LatencyBucketsMicros(),
      {{"verb", "detect"}});
  const double hist_p50_us = session_hist->Quantile(0.50);
  const double hist_p99_us = session_hist->Quantile(0.99);
  const double ext_p50_us = bench::Percentile(all_latencies, 50) * 1e6;
  const double ext_p99_us = bench::Percentile(all_latencies, 99) * 1e6;
  const bool hist_agrees = QuantilesAgree(hist_p50_us, ext_p50_us) &&
                           QuantilesAgree(hist_p99_us, ext_p99_us);
  std::printf("in-process histogram: p50 %.1fus (external %.1fus), "
              "p99 %.1fus (external %.1fus) -> %s\n",
              hist_p50_us, ext_p50_us, hist_p99_us, ext_p99_us,
              hist_agrees ? "agree" : "DIVERGED");

  // Cached storm: identical traffic against a single-mutex result cache
  // (cache_shards=1, the pre-sharding engine) and the sharded default. The
  // catalog and graphs are shared; only result-cache lock contention
  // differs.
  bool storm_identical = true;
  serve::QueryEngineOptions mutex_options;
  mutex_options.result_cache_shards = 1;
  serve::QueryEngine mutex_engine(&catalog, mutex_options);
  const double storm_mutex_qps =
      RunCachedStorm(mutex_engine, queries, expected_blocks, &storm_identical);
  serve::QueryEngine sharded_engine(&catalog);
  const double storm_sharded_qps = RunCachedStorm(
      sharded_engine, queries, expected_blocks, &storm_identical);
  const double storm_ratio =
      storm_mutex_qps > 0 ? storm_sharded_qps / storm_mutex_qps : 0.0;
  std::printf("cached storm at %zu sessions: single-mutex %.0f qps, "
              "sharded %.0f qps (%.2fx)\n",
              kStormSessions, storm_mutex_qps, storm_sharded_qps, storm_ratio);

  // --socket: the same cached traffic through a real TCP front end,
  // byte-exact against the stdin front (zero clock, no stripping).
  bool socket_identical = true;
  if (socket_phase) {
    socket_identical = RunSocketPhase(&catalog, queries, &json);
  }

  json.Add("hardware_threads", hw);
  json.Add("scaling_x", scaling);
  json.Add("bit_identical", all_identical && storm_identical);
  json.Add("storm_qps_mutex_s8", storm_mutex_qps);
  json.Add("storm_qps_sharded_s8", storm_sharded_qps);
  json.Add("storm_sharded_vs_mutex_ratio", storm_ratio);
  json.Add("hist_p50_us", hist_p50_us);
  json.Add("hist_p99_us", hist_p99_us);
  json.Add("hist_matches_external", hist_agrees);
  if (!json.Write()) return 1;

  if (!all_identical || !storm_identical) {
    std::printf("\nFAIL: concurrent responses diverged from single-session "
                "transcripts\n");
    return 1;
  }
  // Socket byte-exactness is machine-independent: enforced whenever the
  // phase ran, like the in-process transcript checks above.
  if (!socket_identical) {
    std::printf("\nFAIL: socket responses diverged from the stdin front\n");
    return 1;
  }
  // Histogram/external agreement is machine-independent (both sides measure
  // the same run), so it is enforced even where the throughput gates are
  // not.
  if (!hist_agrees) {
    std::printf("\nFAIL: in-process histogram percentiles diverged from the "
                "externally timed percentiles\n");
    return 1;
  }
  if (hw < 4 || bench::GateDisabled()) {
    std::printf("\nthroughput gates skipped (%s); bit-identity OK\n",
                hw < 4 ? "<4 hardware threads" : "VULNDS_BENCH_GATE=0");
    return 0;
  }
  if (scaling < 3.0) {
    std::printf("\nFAIL: scaling %.2fx below the 3x target on a %zu-core "
                "host\n",
                scaling, hw);
    return 1;
  }
  // The sharded cache must at least match the single-mutex cache. The two
  // storms are separately timed wall-clock runs, so the floor carries
  // scheduler-noise headroom (a genuine regression — sharding adding
  // contention — lands far below it; on multi-core hosts the win shows up
  // as ratios well above 1).
  constexpr double kStormFloor = 0.90;
  if (storm_ratio < kStormFloor) {
    std::printf("\nFAIL: sharded result cache slower than the single-mutex "
                "cache under a cached storm (%.2fx < %.2fx floor)\n",
                storm_ratio, kStormFloor);
    return 1;
  }
  std::printf("\nscaling %.2fx >= 3x and sharded storm %.2fx >= %.2fx: OK\n",
              scaling, storm_ratio, kStormFloor);
  return 0;
}
