// Concurrent serving: aggregate cached-query throughput and latency
// percentiles as the number of concurrent sessions grows, over one shared
// QueryEngine fronted by ServeServer sessions.
//
// Sessions are prewarmed so every timed request is a result-cache hit: the
// scaling measured here is the serve stack's (sharded catalog, per-request
// formatting, engine cache lock), not the detectors'. Every response is
// checked bit-identical to its single-session counterpart modulo the
// wall-clock time= token — the only nondeterministic byte in the protocol.
//
// Gate (>=4-core hosts): 8 sessions must aggregate >=3x the single-session
// throughput. On narrower hosts the scaling gate is reported but not
// enforced; bit-identity is always enforced.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "serve/protocol.h"
#include "serve/serve_server.h"

namespace {

using namespace vulnds;

constexpr std::size_t kGraphs = 8;
constexpr int kRepeats = 1500;  // timed cached queries per session

std::string StripTimes(const std::string& text) {
  std::istringstream in(text);
  std::string line, rebuilt;
  while (std::getline(in, line)) {
    rebuilt += serve::StripWallClockTokens(line) + "\n";
  }
  return rebuilt;
}

struct SessionRun {
  std::vector<double> latencies;  // seconds per request
  std::string output;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::GetProfile();
  bench::PrintProfileBanner(profile, "concurrent serve (sessions over one engine)");
  bench::BenchJson json("concurrent_serve", bench::JsonRequested(argc, argv));

  serve::GraphCatalog catalog;
  serve::QueryEngine engine(&catalog);
  serve::ServeServer server(&engine);

  // One modest graph per session slot; distinct seeds so shards and cache
  // lines are genuinely distinct.
  const DatasetSpec spec = GetDatasetSpec(DatasetId::kCitation);
  const double scale =
      std::min(1.0, 800.0 / static_cast<double>(spec.num_nodes));
  std::vector<std::string> queries;
  for (std::size_t g = 0; g < kGraphs; ++g) {
    Result<UncertainGraph> graph = MakeDataset(DatasetId::kCitation, scale, 42 + g);
    if (!graph.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    const std::size_t k = std::max<std::size_t>(1, graph->num_nodes() / 50);
    const std::string name = "g" + std::to_string(g);
    if (!catalog.Put(name, graph.MoveValue()).ok()) return 1;
    queries.push_back("detect " + name + " " + std::to_string(k) +
                      " BSRBK seed=7");
  }

  // Prewarm (the one cold detect per graph) and capture the per-graph
  // cached response block each timed request must reproduce.
  std::vector<std::string> expected_blocks(kGraphs);
  {
    serve::ServeSession session = server.NewSession();
    for (std::size_t g = 0; g < kGraphs; ++g) {
      std::ostringstream warm;
      session.HandleLine(queries[g], warm);  // cold
      std::ostringstream cached;
      session.HandleLine(queries[g], cached);  // cached=1 from here on
      expected_blocks[g] = StripTimes(cached.str());
    }
  }

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::printf("graphs: %zu (~%zu nodes each), %d cached queries/session, "
              "%zu hardware threads\n\n",
              kGraphs, static_cast<std::size_t>(spec.num_nodes * scale),
              kRepeats, hw);

  TextTable table;
  table.SetHeader({"sessions", "qps", "p50 (us)", "p99 (us)", "scaling"});
  double qps1 = 0.0, qps8 = 0.0;
  bool all_identical = true;
  for (const std::size_t sessions : {1u, 2u, 4u, 8u}) {
    std::vector<SessionRun> runs(sessions);
    std::vector<std::thread> threads;
    WallTimer wall;
    for (std::size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        serve::ServeSession session = server.NewSession();
        SessionRun& run = runs[s];
        run.latencies.reserve(kRepeats);
        std::ostringstream out;
        const std::string& query = queries[s % kGraphs];
        for (int r = 0; r < kRepeats; ++r) {
          WallTimer timer;
          session.HandleLine(query, out);
          run.latencies.push_back(timer.Seconds());
        }
        run.output = out.str();
      });
    }
    for (std::thread& t : threads) t.join();
    const double elapsed = wall.Seconds();

    // Bit-identity: each session's transcript is its expected cached block
    // repeated, modulo time=.
    for (std::size_t s = 0; s < sessions; ++s) {
      std::string expected;
      for (int r = 0; r < kRepeats; ++r) expected += expected_blocks[s % kGraphs];
      if (StripTimes(runs[s].output) != expected) {
        all_identical = false;
        std::fprintf(stderr,
                     "FAIL: session %zu of %zu diverged from its "
                     "single-session transcript\n",
                     s, sessions);
      }
    }

    std::vector<double> latencies;
    for (const SessionRun& run : runs) {
      latencies.insert(latencies.end(), run.latencies.begin(),
                       run.latencies.end());
    }
    const double qps = static_cast<double>(sessions * kRepeats) / elapsed;
    const double p50 = bench::Percentile(latencies, 50);
    const double p99 = bench::Percentile(latencies, 99);
    if (sessions == 1) qps1 = qps;
    if (sessions == 8) qps8 = qps;
    table.AddRow({std::to_string(sessions), TextTable::Num(qps, 0),
                  TextTable::Num(p50 * 1e6, 1), TextTable::Num(p99 * 1e6, 1),
                  TextTable::Num(qps1 > 0 ? qps / qps1 : 0.0, 2) + "x"});
    json.Add("qps_s" + std::to_string(sessions), qps);
    json.Add("p50_ms_s" + std::to_string(sessions), p50 * 1e3);
    json.Add("p99_ms_s" + std::to_string(sessions), p99 * 1e3);
  }
  std::printf("%s\n", table.ToString().c_str());

  const double scaling = qps1 > 0 ? qps8 / qps1 : 0.0;
  const serve::ServerStatsSnapshot stats = server.stats();
  std::printf("sessions: %zu, requests: %zu, errors: %zu\n",
              stats.sessions_started, stats.requests, stats.errors);
  std::printf("aggregate scaling at 8 sessions: %.2fx\n", scaling);

  json.Add("hardware_threads", hw);
  json.Add("scaling_x", scaling);
  json.Add("bit_identical", all_identical);
  if (!json.Write()) return 1;

  if (!all_identical) {
    std::printf("\nFAIL: concurrent responses diverged from single-session "
                "transcripts\n");
    return 1;
  }
  if (hw >= 4 && scaling < 3.0) {
    std::printf("\nFAIL: scaling %.2fx below the 3x target on a %zu-core "
                "host\n",
                scaling, hw);
    return 1;
  }
  if (hw < 4) {
    std::printf("\nscaling gate skipped (<4 hardware threads); "
                "bit-identity OK\n");
  } else {
    std::printf("\nscaling %.2fx >= 3x target: OK\n", scaling);
  }
  return 0;
}
