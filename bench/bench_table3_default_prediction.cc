// Table 3: results of default prediction (the case study).
//
// Simulates the temporal guaranteed-loan book, trains every baseline on
// 2012 and reports AUC for 2014/2015/2016. Expected shape per the paper:
// the uncertain-graph detectors (BSR, BSRBK) on top, HGAR/INDDP as the
// strongest ML baselines, structural centralities far behind.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/table.h"
#include "common/timer.h"
#include "risk/prediction.h"

int main() {
  using namespace vulnds;
  using namespace vulnds::bench;

  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Table 3: default-prediction AUC");

  LoanSimOptions sim;
  sim.num_firms = profile.full ? 3000 : 1800;
  sim.seed = 20120601;
  std::printf("simulating %zu firms x %d years...\n", sim.num_firms,
              sim.num_years);
  Result<TemporalLoanData> data = SimulateLoanNetwork(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  CaseStudyOptions options;
  options.detector_samples = profile.full ? 6000 : 3000;
  options.bsrbk_budget = profile.full ? 2000 : 1000;
  options.ris_sets = profile.full ? 10000 : 3000;

  WallTimer timer;
  Result<CaseStudyResult> result = RunCaseStudy(*data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "case study failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  TextTable table;
  std::vector<std::string> header = {"Method"};
  for (const int year : result->test_years) {
    header.push_back("AUC(" + std::to_string(year) + ")");
  }
  table.SetHeader(header);
  for (const CaseStudyRow& row : result->rows) {
    std::vector<std::string> cells = {RiskMethodName(row.method)};
    for (const double auc : row.auc) cells.push_back(TextTable::Num(auc, 5));
    table.AddRow(cells);
  }
  std::printf("%s\ntotal time: %.1f s\n", table.ToString().c_str(),
              timer.Seconds());
  return 0;
}
