// Micro-benchmarks for the baseline substrates: centralities, k-core,
// RIS sketches and the ML kernels.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/datasets.h"
#include "ml/linear.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "rank/centrality.h"
#include "rank/inf_max.h"
#include "rank/kcore.h"

namespace {

using namespace vulnds;

const UncertainGraph& InterbankGraph() {
  static const UncertainGraph graph =
      MakeDataset(DatasetId::kInterbank, 1.0, 42).MoveValue();
  return graph;
}

const UncertainGraph& CitationGraph() {
  static const UncertainGraph graph =
      MakeDataset(DatasetId::kCitation, 1.0, 42).MoveValue();
  return graph;
}

void BM_Betweenness(benchmark::State& state) {
  const UncertainGraph& graph =
      state.range(0) == 0 ? InterbankGraph() : CitationGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BetweennessCentrality(graph));
  }
}
BENCHMARK(BM_Betweenness)->Arg(0)->Arg(1);

void BM_PageRank(benchmark::State& state) {
  const UncertainGraph& graph = CitationGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PageRank(graph));
  }
}
BENCHMARK(BM_PageRank);

void BM_KCore(benchmark::State& state) {
  const UncertainGraph& graph = CitationGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoreNumbers(graph));
  }
}
BENCHMARK(BM_KCore);

void BM_RisSketchBuild(benchmark::State& state) {
  const UncertainGraph& graph = CitationGraph();
  const std::size_t sets = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RisSketches ris(graph, sets, 5);
    benchmark::DoNotOptimize(ris.num_sets());
  }
}
BENCHMARK(BM_RisSketchBuild)->Arg(500)->Arg(2000);

void BM_LogisticFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Matrix x(n, 16);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 16; ++j) x.At(i, j) = rng.NextGaussian();
    y[i] = rng.Bernoulli(0.3) ? 1.0 : 0.0;
  }
  TrainOptions o;
  o.epochs = 10;
  for (auto _ : state) {
    LogisticRegression model(o);
    benchmark::DoNotOptimize(model.Fit(x, y));
  }
}
BENCHMARK(BM_LogisticFit)->Arg(500)->Arg(2000);

void BM_Auc(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> scores(n);
  std::vector<double> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.Bernoulli(0.2) ? 1.0 : 0.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(AreaUnderRoc(scores, labels));
  }
}
BENCHMARK(BM_Auc)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
