// Adaptive vs fixed wave scheduling for cold BSRBK detection.
//
// The fixed schedule materializes equal-size waves (4 workers -> 128-world
// waves), so every early-stopping query throws away up to wave_size - 1
// fully sampled worlds past the stop position. The adaptive schedule probes,
// estimates the stop distance from the candidates' bottom-k trajectories and
// lower bounds, and clamps the final wave to the estimate. This harness
// measures exactly that waste on two workload families:
//
//   * early-stopping: paper-default BSRBK (bk=16) on bundled datasets — the
//     stop fires early in the stream, where fixed waves waste the most;
//   * non-stopping: bk far beyond reach, the budget exhausts — both
//     schedules materialize every world, so adaptive may only add
//     negligible ramp overhead and must waste nothing.
//
// Rankings are checked bit-identical between the schedules on every repeat
// (determinism is the scheduler's contract; the waves only move cost).
//
// Gate: summed across datasets, the adaptive schedule's median wasted
// worlds on the early-stopping workload must be STRICTLY below the fixed
// schedule's. Wasted worlds are a pure function of (seed, pool width, wave
// plan) — no timing involved — so the gate is enforced on every host;
// VULNDS_BENCH_GATE=0 demotes it to report-only.
//
// --json writes BENCH_adaptive_waves.json for the CI perf trajectory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "vulnds/detector.h"

namespace {

using namespace vulnds;
using namespace vulnds::bench;

constexpr std::size_t kRepeats = 5;
constexpr std::size_t kWorkers = 4;

struct ModeRun {
  std::size_t wasted = 0;       // schedule-deterministic, identical per repeat
  std::size_t waves = 0;
  std::size_t processed = 0;
  bool early_stopped = false;
  double median_seconds = 0.0;
  DetectionResult result;       // first repeat's full result (for bit checks)
};

// Runs kRepeats cold detects under `mode`, returning telemetry and the
// median wall time. Exits on any error.
ModeRun RunMode(const UncertainGraph& graph, DetectorOptions options,
                WaveMode mode, ThreadPool* pool) {
  options.wave_mode = mode;
  options.pool = pool;
  ModeRun run;
  std::vector<double> seconds;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    WallTimer timer;
    Result<DetectionResult> result = DetectTopK(graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "detect failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    seconds.push_back(timer.Seconds());
    if (r == 0) {
      run.wasted = result->worlds_wasted;
      run.waves = result->waves_issued;
      run.processed = result->samples_processed;
      run.early_stopped = result->early_stopped;
      run.result = result.MoveValue();
    } else if (result->topk != run.result.topk ||
               result->scores != run.result.scores ||
               result->worlds_wasted != run.wasted) {
      // The schedule is pure in (seed, pool width, plan): even the waste
      // telemetry must reproduce run to run.
      std::fprintf(stderr, "DETERMINISM VIOLATION: repeat %zu diverged\n", r);
      std::exit(1);
    }
  }
  run.median_seconds = Percentile(std::move(seconds), 50.0);
  return run;
}

void CheckBitIdentical(const ModeRun& fixed, const ModeRun& adaptive,
                       const char* what) {
  if (fixed.result.topk != adaptive.result.topk ||
      fixed.result.scores != adaptive.result.scores ||
      fixed.processed != adaptive.processed ||
      fixed.early_stopped != adaptive.early_stopped) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: %s — adaptive ranking diverged "
                 "from fixed\n",
                 what);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Adaptive vs fixed BSRBK wave scheduling");
  BenchJson json("adaptive_waves", JsonRequested(argc, argv));

  const bool gate_disabled = GateDisabled();
  json.Add("gate_enforced", !gate_disabled);
  json.Add("hardware_threads",
           static_cast<std::size_t>(std::thread::hardware_concurrency()));

  ThreadPool pool(kWorkers);
  const std::vector<DatasetId> datasets = {DatasetId::kWiki, DatasetId::kP2P,
                                           DatasetId::kCitation};

  TextTable table;
  table.SetHeader({"dataset", "workload", "stop", "fixed waste", "adapt waste",
                   "fixed waves", "adapt waves", "fixed ms", "adapt ms"});
  std::size_t early_fixed_waste = 0, early_adaptive_waste = 0;
  std::vector<double> speedups;
  bool saw_early_stop = false;

  for (const DatasetId id : datasets) {
    const DatasetSpec spec = GetDatasetSpec(id);
    const double scale =
        profile.full
            ? 1.0
            : std::min(1.0, 8000.0 / static_cast<double>(spec.num_nodes));
    Result<UncertainGraph> graph = MakeDataset(id, scale, 42);
    if (!graph.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    const std::string name = DatasetName(id);

    // Early-stopping workload: paper defaults — the stop fires after the
    // strongest candidates collect bk defaults, deep inside a fixed wave.
    DetectorOptions early;
    early.method = Method::kBsrbk;
    early.k = std::max<std::size_t>(1, graph->num_nodes() * 2 / 100);
    const ModeRun early_fixed =
        RunMode(*graph, early, WaveMode::kFixed, &pool);
    const ModeRun early_adaptive =
        RunMode(*graph, early, WaveMode::kAdaptive, &pool);
    CheckBitIdentical(early_fixed, early_adaptive, name.c_str());
    saw_early_stop |= early_fixed.early_stopped;
    early_fixed_waste += early_fixed.wasted;
    early_adaptive_waste += early_adaptive.wasted;
    const double speedup = early_fixed.median_seconds /
                           std::max(1e-12, early_adaptive.median_seconds);
    speedups.push_back(speedup);
    table.AddRow({name, "early-stop",
                  early_fixed.early_stopped ? std::to_string(early_fixed.processed)
                                            : "-",
                  std::to_string(early_fixed.wasted),
                  std::to_string(early_adaptive.wasted),
                  std::to_string(early_fixed.waves),
                  std::to_string(early_adaptive.waves),
                  TextTable::Num(early_fixed.median_seconds * 1e3, 2),
                  TextTable::Num(early_adaptive.median_seconds * 1e3, 2)});
    json.Add(name + "_early_wasted_fixed", early_fixed.wasted);
    json.Add(name + "_early_wasted_adaptive", early_adaptive.wasted);
    json.Add(name + "_early_adaptive_speedup", speedup);

    // Non-stopping workload: bk beyond reach within the budget, so the
    // stream exhausts. Both schedules must waste nothing; adaptive's ramp
    // may only cost extra ParallelFor rounds, not worlds.
    DetectorOptions nonstop = early;
    nonstop.bk = 100000;
    const ModeRun nonstop_fixed =
        RunMode(*graph, nonstop, WaveMode::kFixed, &pool);
    const ModeRun nonstop_adaptive =
        RunMode(*graph, nonstop, WaveMode::kAdaptive, &pool);
    CheckBitIdentical(nonstop_fixed, nonstop_adaptive, name.c_str());
    if (nonstop_fixed.early_stopped) {
      std::fprintf(stderr,
                   "NOTE: %s non-stop workload early-stopped anyway "
                   "(bk too low for this scale)\n",
                   name.c_str());
    }
    if (nonstop_fixed.wasted != 0 || nonstop_adaptive.wasted != 0) {
      std::fprintf(stderr,
                   "FAIL: %s wasted worlds on an exhausted budget "
                   "(fixed=%zu adaptive=%zu)\n",
                   name.c_str(), nonstop_fixed.wasted,
                   nonstop_adaptive.wasted);
      return 1;
    }
    table.AddRow({name, "non-stop", "-", std::to_string(nonstop_fixed.wasted),
                  std::to_string(nonstop_adaptive.wasted),
                  std::to_string(nonstop_fixed.waves),
                  std::to_string(nonstop_adaptive.waves),
                  TextTable::Num(nonstop_fixed.median_seconds * 1e3, 2),
                  TextTable::Num(nonstop_adaptive.median_seconds * 1e3, 2)});
    json.Add(name + "_nonstop_overhead_ratio",
             nonstop_adaptive.median_seconds /
                 std::max(1e-12, nonstop_fixed.median_seconds));
  }
  std::printf("%s\n", table.ToString().c_str());

  const double waste_ratio =
      early_adaptive_waste == 0
          ? static_cast<double>(early_fixed_waste)
          : static_cast<double>(early_fixed_waste) /
                static_cast<double>(early_adaptive_waste);
  std::printf("early-stop wasted worlds (summed medians): fixed=%zu "
              "adaptive=%zu (%.1fx less waste)\n",
              early_fixed_waste, early_adaptive_waste, waste_ratio);
  std::printf("median cold-detect speedup (adaptive vs fixed): %.2fx\n",
              Percentile(speedups, 50.0));
  json.Add("early_wasted_fixed_total", early_fixed_waste);
  json.Add("early_wasted_adaptive_total", early_adaptive_waste);
  json.Add("early_waste_ratio", waste_ratio);
  json.Add("adaptive_speedup_median", Percentile(speedups, 50.0));

  const bool passed =
      saw_early_stop && early_adaptive_waste < early_fixed_waste;
  json.Add("gate_passed", passed);
  if (!json.Write()) return 1;

  if (!saw_early_stop) {
    std::fprintf(stderr,
                 "GATE FAILED: no workload early-stopped — the early-stop "
                 "configurations no longer exercise the scheduler\n");
    if (!gate_disabled) return 1;
  }
  if (early_adaptive_waste >= early_fixed_waste) {
    std::fprintf(stderr,
                 "GATE FAILED: adaptive wasted %zu worlds vs fixed %zu — "
                 "the adaptive scheduler no longer cuts waste\n",
                 early_adaptive_waste, early_fixed_waste);
    if (!gate_disabled) return 1;
  }
  if (passed) {
    std::printf("\nadaptive waste %zu < fixed waste %zu: OK\n",
                early_adaptive_waste, early_fixed_waste);
  }
  return 0;
}
