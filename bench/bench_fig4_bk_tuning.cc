// Figure 4: parameter bk tuning for the bottom-k based method.
//
// For the four effectiveness datasets (Fraud, Guarantee, Interbank,
// Citation) and bk in {4, 8, 16, 32, 64}, reports BSRBK's precision@k
// against the Monte-Carlo ground truth while k sweeps 2%..10% of |V|.
// Expected shape: precision rises with bk and saturates around bk = 8..16.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"
#include "vulnds/precision.h"

int main() {
  using namespace vulnds;
  using namespace vulnds::bench;

  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Figure 4: bk tuning for BSRBK");
  ThreadPool pool;

  for (const DatasetId id : EffectivenessDatasets()) {
    Result<UncertainGraph> graph = MakeDataset(id, profile.DatasetScale(id), 42);
    if (!graph.ok()) return 1;
    const GroundTruth gt =
        ComputeGroundTruth(*graph, profile.ground_truth_samples, 777, &pool);

    TextTable table;
    std::vector<std::string> header = {"k(%)"};
    const int bks[] = {4, 8, 16, 32, 64};
    for (const int bk : bks) header.push_back("bk-" + std::to_string(bk));
    table.SetHeader(header);

    for (const int kp : profile.k_percents) {
      const std::size_t k = std::max<std::size_t>(
          1, graph->num_nodes() * static_cast<std::size_t>(kp) / 100);
      const std::vector<NodeId> truth = gt.TopK(k);
      std::vector<std::string> row = {std::to_string(kp)};
      for (const int bk : bks) {
        DetectorOptions options;
        options.method = Method::kBsrbk;
        options.k = k;
        options.bk = bk;
        Result<DetectionResult> result = DetectTopK(*graph, options);
        if (!result.ok()) return 1;
        row.push_back(TextTable::Num(PrecisionAtK(result->topk, truth), 3));
      }
      table.AddRow(row);
    }
    std::printf("[%s]  precision@k by bk (n = %zu)\n%s\n",
                DatasetName(id).c_str(), graph->num_nodes(),
                table.ToString().c_str());
  }
  return 0;
}
