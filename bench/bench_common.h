// Shared configuration for the table/figure harnesses.
//
// Default profile is "quick": large datasets are scaled down and sample
// budgets trimmed so the full harness suite finishes in minutes. Set
// VULNDS_BENCH_FULL=1 to run the paper-scale configuration (Table 2 sizes,
// 20 000-world ground truth, 10 000-sample method N).

// Passing --json to a harness additionally writes a machine-readable
// BENCH_<name>.json record (scalar metrics only) next to the binary, so CI
// can collect a perf trajectory without scraping stdout.

#ifndef VULNDS_BENCH_BENCH_COMMON_H_
#define VULNDS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "gen/datasets.h"

namespace vulnds::bench {

/// Resolved benchmark profile.
struct BenchProfile {
  bool full = false;
  std::size_t ground_truth_samples = 3000;
  std::size_t naive_samples = 2000;
  std::vector<int> k_percents = {2, 6, 10};
  std::size_t max_quick_nodes = 3000;

  /// Scale for a dataset: 1.0 in full mode, shrunk to ~max_quick_nodes
  /// nodes in quick mode.
  double DatasetScale(DatasetId id) const {
    if (full) return 1.0;
    const DatasetSpec spec = GetDatasetSpec(id);
    if (spec.num_nodes <= max_quick_nodes) return 1.0;
    return static_cast<double>(max_quick_nodes) /
           static_cast<double>(spec.num_nodes);
  }
};

/// Reads the profile from the environment.
inline BenchProfile GetProfile() {
  BenchProfile p;
  p.full = BenchFullScale();
  if (p.full) {
    p.ground_truth_samples = 20000;  // the paper's ground-truth convention
    p.naive_samples = 10000;
    p.k_percents = {2, 4, 6, 8, 10};
  }
  return p;
}

/// Prints the standard profile banner.
inline void PrintProfileBanner(const BenchProfile& profile, const char* what) {
  std::printf("=== %s ===\n", what);
  std::printf("profile: %s (set VULNDS_BENCH_FULL=1 for paper scale)\n\n",
              profile.full ? "FULL / paper scale" : "quick");
}

/// A scratch-file path under $TMPDIR (default /tmp).
inline std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

/// True when --json appears among the harness arguments.
inline bool JsonRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

/// True when VULNDS_BENCH_GATE=0 demotes every perf gate to report-only
/// (noisy or shared environments). One definition for every harness, so the
/// env contract cannot drift between benches.
inline bool GateDisabled() {
  const char* value = std::getenv("VULNDS_BENCH_GATE");
  return value != nullptr && std::string(value) == "0";
}

/// The p-th percentile (p in [0, 100]) of a sample, linearly interpolated
/// between the two closest ranks; the input need not be sorted. Returns 0
/// for an empty sample.
inline double Percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

/// Accumulates scalar metrics and writes them as BENCH_<name>.json.
/// Disabled (all calls no-ops) unless constructed with enabled = true, so a
/// harness can emit unconditionally and let the flag decide.
class BenchJson {
 public:
  BenchJson(std::string name, bool enabled)
      : name_(std::move(name)), enabled_(enabled) {
    Add("name", name_);
  }

  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }
  void Add(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, std::size_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  /// Writes BENCH_<name>.json in the working directory; prints the path.
  /// Returns false (with a message) when the file cannot be written.
  bool Write() const {
    if (!enabled_) return true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   fields_[i].first.c_str(), fields_[i].second.c_str());
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  bool enabled_;
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> JSON text
};

}  // namespace vulnds::bench

#endif  // VULNDS_BENCH_BENCH_COMMON_H_
