// Shared configuration for the table/figure harnesses.
//
// Default profile is "quick": large datasets are scaled down and sample
// budgets trimmed so the full harness suite finishes in minutes. Set
// VULNDS_BENCH_FULL=1 to run the paper-scale configuration (Table 2 sizes,
// 20 000-world ground truth, 10 000-sample method N).

#ifndef VULNDS_BENCH_BENCH_COMMON_H_
#define VULNDS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/env.h"
#include "gen/datasets.h"

namespace vulnds::bench {

/// Resolved benchmark profile.
struct BenchProfile {
  bool full = false;
  std::size_t ground_truth_samples = 3000;
  std::size_t naive_samples = 2000;
  std::vector<int> k_percents = {2, 6, 10};
  std::size_t max_quick_nodes = 3000;

  /// Scale for a dataset: 1.0 in full mode, shrunk to ~max_quick_nodes
  /// nodes in quick mode.
  double DatasetScale(DatasetId id) const {
    if (full) return 1.0;
    const DatasetSpec spec = GetDatasetSpec(id);
    if (spec.num_nodes <= max_quick_nodes) return 1.0;
    return static_cast<double>(max_quick_nodes) /
           static_cast<double>(spec.num_nodes);
  }
};

/// Reads the profile from the environment.
inline BenchProfile GetProfile() {
  BenchProfile p;
  p.full = BenchFullScale();
  if (p.full) {
    p.ground_truth_samples = 20000;  // the paper's ground-truth convention
    p.naive_samples = 10000;
    p.k_percents = {2, 4, 6, 8, 10};
  }
  return p;
}

/// Prints the standard profile banner.
inline void PrintProfileBanner(const BenchProfile& profile, const char* what) {
  std::printf("=== %s ===\n", what);
  std::printf("profile: %s (set VULNDS_BENCH_FULL=1 for paper scale)\n\n",
              profile.full ? "FULL / paper scale" : "quick");
}

}  // namespace vulnds::bench

#endif  // VULNDS_BENCH_BENCH_COMMON_H_
