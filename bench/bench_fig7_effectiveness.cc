// Figure 7: effectiveness evaluation.
//
// Precision@k against the Monte-Carlo ground truth for all five methods on
// the four effectiveness datasets, k sweeping the profile percentages.
// Expected shape: all methods close together; N marginally best (largest
// sample size); BSRBK within a few points of N.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"
#include "vulnds/precision.h"

int main() {
  using namespace vulnds;
  using namespace vulnds::bench;

  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Figure 7: effectiveness (precision@k)");
  ThreadPool pool;

  for (const DatasetId id : EffectivenessDatasets()) {
    Result<UncertainGraph> graph = MakeDataset(id, profile.DatasetScale(id), 42);
    if (!graph.ok()) return 1;
    const GroundTruth gt =
        ComputeGroundTruth(*graph, profile.ground_truth_samples, 777, &pool);

    TextTable table;
    std::vector<std::string> header = {"k(%)"};
    for (const Method m : AllMethods()) header.push_back(MethodName(m));
    table.SetHeader(header);

    for (const int kp : profile.k_percents) {
      const std::size_t k = std::max<std::size_t>(
          1, graph->num_nodes() * static_cast<std::size_t>(kp) / 100);
      const std::vector<NodeId> truth = gt.TopK(k);
      std::vector<std::string> row = {std::to_string(kp)};
      for (const Method m : AllMethods()) {
        DetectorOptions options;
        options.method = m;
        options.k = k;
        options.naive_samples = profile.naive_samples;
        options.pool = &pool;
        Result<DetectionResult> result = DetectTopK(*graph, options);
        if (!result.ok()) return 1;
        row.push_back(TextTable::Num(PrecisionAtK(result->topk, truth), 3));
      }
      table.AddRow(row);
    }
    std::printf("[%s]  n = %zu\n%s\n", DatasetName(id).c_str(),
                graph->num_nodes(), table.ToString().c_str());
  }
  return 0;
}
