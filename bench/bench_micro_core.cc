// Micro-benchmarks (google-benchmark) for the core sampling machinery:
// per-world cost of forward vs reverse sampling, the bound iterations,
// candidate reduction and the bottom-k sketch.

#include <benchmark/benchmark.h>

#include <numeric>

#include "gen/datasets.h"
#include "sketch/bottom_k.h"
#include "vulnds/basic_sampler.h"
#include "vulnds/bounds.h"
#include "vulnds/candidate_reduction.h"
#include "vulnds/reverse_sampler.h"

namespace {

using namespace vulnds;

const UncertainGraph& CitationGraph() {
  static const UncertainGraph graph =
      MakeDataset(DatasetId::kCitation, 1.0, 42).MoveValue();
  return graph;
}

const UncertainGraph& BitcoinGraph() {
  static const UncertainGraph graph =
      MakeDataset(DatasetId::kBitcoin, 1.0, 42).MoveValue();
  return graph;
}

void BM_ForwardSampleWorld(benchmark::State& state) {
  const UncertainGraph& graph =
      state.range(0) == 0 ? CitationGraph() : BitcoinGraph();
  ForwardWorldSampler sampler(graph);
  Rng rng(1);
  std::vector<char> defaulted;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleWorld(rng, &defaulted));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardSampleWorld)->Arg(0)->Arg(1);

void BM_ReverseSampleWorld(benchmark::State& state) {
  const UncertainGraph& graph =
      state.range(0) == 0 ? CitationGraph() : BitcoinGraph();
  // Candidates: the top 5% by upper bound, the realistic BSR workload.
  const auto upper = UpperBounds(graph, 2);
  const auto lower = LowerBounds(graph, 2);
  const auto reduced =
      ReduceCandidates(*lower, *upper, graph.num_nodes() / 20);
  ReverseSampler sampler(graph, reduced->candidates);
  std::vector<char> defaulted;
  uint64_t world = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleWorld(WorldSeed(7, world++), &defaulted));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReverseSampleWorld)->Arg(0)->Arg(1);

void BM_LowerBounds(benchmark::State& state) {
  const UncertainGraph& graph = BitcoinGraph();
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LowerBounds(graph, order));
  }
}
BENCHMARK(BM_LowerBounds)->Arg(1)->Arg(2)->Arg(5);

void BM_UpperBounds(benchmark::State& state) {
  const UncertainGraph& graph = BitcoinGraph();
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UpperBounds(graph, order));
  }
}
BENCHMARK(BM_UpperBounds)->Arg(1)->Arg(2)->Arg(5);

void BM_CandidateReduction(benchmark::State& state) {
  const UncertainGraph& graph = BitcoinGraph();
  const auto lower = LowerBounds(graph, 2);
  const auto upper = UpperBounds(graph, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReduceCandidates(*lower, *upper, graph.num_nodes() / 20));
  }
}
BENCHMARK(BM_CandidateReduction);

void BM_BottomKSketchAdd(benchmark::State& state) {
  const int bk = static_cast<int>(state.range(0));
  BottomKSketch sketch(bk, 99);
  uint64_t id = 0;
  for (auto _ : state) {
    sketch.Add(id++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BottomKSketchAdd)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
