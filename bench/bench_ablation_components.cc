// Ablation: what each optimization contributes (DESIGN.md's design-choice
// index). Runs the optimization ladder on two contrasting graphs — the
// hub-dominated Guarantee network and the denser Wiki network — and
// reports, per rung: sample budget, samples actually processed, candidate
// set size, verified count, wall time and precision against ground truth.
//
// Rungs:
//   SN           Equation-3 sample size, forward sampling
//   SR           + reverse sampling restricted by rule 2
//   BSR          + verification (rule 1) and Equation-4 sample size
//   BSRBK        + bottom-k early stop
// plus a bound-order sub-ablation for BSR (order 1 vs 2 vs 3).

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"
#include "vulnds/precision.h"

int main() {
  using namespace vulnds;
  using namespace vulnds::bench;

  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Ablation: contribution of each optimization");
  ThreadPool pool;

  const DatasetId targets[] = {DatasetId::kGuarantee, DatasetId::kWiki};
  for (const DatasetId id : targets) {
    Result<UncertainGraph> graph = MakeDataset(id, profile.DatasetScale(id), 42);
    if (!graph.ok()) return 1;
    const std::size_t k = std::max<std::size_t>(1, graph->num_nodes() * 5 / 100);
    const GroundTruth gt =
        ComputeGroundTruth(*graph, profile.ground_truth_samples, 777, &pool);
    const std::vector<NodeId> truth = gt.TopK(k);

    TextTable table;
    table.SetHeader({"rung", "budget t", "processed", "|B|", "k'", "time(s)",
                     "precision"});
    for (const Method m : {Method::kSampleNaive, Method::kSampleReverse,
                           Method::kBsr, Method::kBsrbk}) {
      DetectorOptions options;
      options.method = m;
      options.k = k;
      options.pool = &pool;
      WallTimer timer;
      Result<DetectionResult> result = DetectTopK(*graph, options);
      if (!result.ok()) return 1;
      table.AddRow({MethodName(m), std::to_string(result->samples_budget),
                    std::to_string(result->samples_processed),
                    std::to_string(result->candidate_count),
                    std::to_string(result->verified_count),
                    TextTable::Num(timer.Seconds(), 4),
                    TextTable::Num(PrecisionAtK(result->topk, truth), 3)});
    }
    std::printf("[%s]  k = %zu (5%%), n = %zu\n%s\n", DatasetName(id).c_str(), k,
                graph->num_nodes(), table.ToString().c_str());

    // Bound-order sub-ablation for BSR.
    TextTable orders;
    orders.SetHeader({"bound order", "budget t", "|B|", "k'", "time(s)",
                      "precision"});
    for (const int order : {1, 2, 3}) {
      DetectorOptions options;
      options.method = Method::kBsr;
      options.k = k;
      options.bound_order = order;
      options.pool = &pool;
      WallTimer timer;
      Result<DetectionResult> result = DetectTopK(*graph, options);
      if (!result.ok()) return 1;
      orders.AddRow({std::to_string(order),
                     std::to_string(result->samples_budget),
                     std::to_string(result->candidate_count),
                     std::to_string(result->verified_count),
                     TextTable::Num(timer.Seconds(), 4),
                     TextTable::Num(PrecisionAtK(result->topk, truth), 3)});
    }
    std::printf("[%s]  BSR by bound order\n%s\n", DatasetName(id).c_str(),
                orders.ToString().c_str());
  }
  return 0;
}
