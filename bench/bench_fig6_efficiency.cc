// Figure 6: efficiency evaluation.
//
// For every registry dataset and every method (N, SN, SR, BSR, BSRBK),
// reports wall-clock detection time while k sweeps over the profile's
// percentages. Expected shape per the paper: N slowest (fixed large sample
// size), each added optimization strictly faster, BSRBK fastest with up to
// two orders of magnitude over N on the larger graphs.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "vulnds/detector.h"

int main() {
  using namespace vulnds;
  using namespace vulnds::bench;

  const BenchProfile profile = GetProfile();
  PrintProfileBanner(profile, "Figure 6: efficiency (seconds per detection)");
  ThreadPool pool;

  for (const DatasetId id : AllDatasets()) {
    Result<UncertainGraph> graph = MakeDataset(id, profile.DatasetScale(id), 42);
    if (!graph.ok()) return 1;

    TextTable table;
    std::vector<std::string> header = {"k(%)"};
    for (const Method m : AllMethods()) header.push_back(MethodName(m));
    header.push_back("N/BSRBK speedup");
    table.SetHeader(header);

    for (const int kp : profile.k_percents) {
      const std::size_t k = std::max<std::size_t>(
          1, graph->num_nodes() * static_cast<std::size_t>(kp) / 100);
      std::vector<std::string> row = {std::to_string(kp)};
      double time_n = 0.0;
      double time_bsrbk = 0.0;
      for (const Method m : AllMethods()) {
        DetectorOptions options;
        options.method = m;
        options.k = k;
        options.naive_samples = profile.naive_samples;
        options.pool = &pool;
        WallTimer timer;
        Result<DetectionResult> result = DetectTopK(*graph, options);
        if (!result.ok()) return 1;
        const double seconds = timer.Seconds();
        if (m == Method::kNaive) time_n = seconds;
        if (m == Method::kBsrbk) time_bsrbk = seconds;
        row.push_back(TextTable::Num(seconds, 4));
      }
      row.push_back(TextTable::Num(time_n / std::max(1e-9, time_bsrbk), 1) + "x");
      table.AddRow(row);
    }
    std::printf("[%s]  n = %zu, m = %zu\n%s\n", DatasetName(id).c_str(),
                graph->num_nodes(), graph->num_edges(),
                table.ToString().c_str());
  }
  return 0;
}
