// Dynamic-update write path: staged-delta commit + warm re-query on the new
// version vs the static stack's full text-reload + cold detect.
//
// The scenario is the paper's risk-monitoring loop: a standing top-k query
// over a graph whose edge probabilities are revised in rounds. The old
// world re-parses the regenerated text file and detects cold every round;
// the dynamic path stages the same revisions through an UpdateManager,
// commits a versioned snapshot (rebuilding only touched CSR runs), and
// re-queries with the carried-forward context. Both paths must return
// bit-identical rankings every round; the dynamic path must win by >= 5x.
//
// Quick profile by default; VULNDS_BENCH_FULL=1 runs the paper-scale graph.
// --json writes a BENCH_dyn_updates.json record.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "dyn/update_manager.h"
#include "graph/builder.h"
#include "graph/graph_io.h"
#include "serve/graph_catalog.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"

namespace {

using namespace vulnds;

// One round of probability revisions plus a little topology churn.
struct Revision {
  NodeId src = 0;
  NodeId dst = 0;
  double prob = 0.0;
  enum Kind { kSet, kAdd, kDel } kind = kSet;
};

// Applies one revision to a plain edge list, mirroring DeltaLog semantics
// (deledge/setprob hit the lowest-id live match).
void ApplyRevision(const Revision& r, std::vector<UncertainEdge>* edges) {
  if (r.kind == Revision::kAdd) {
    edges->push_back({r.src, r.dst, r.prob});
    return;
  }
  for (std::size_t i = 0; i < edges->size(); ++i) {
    if ((*edges)[i].src == r.src && (*edges)[i].dst == r.dst) {
      if (r.kind == Revision::kSet) {
        (*edges)[i].prob = r.prob;
      } else {
        edges->erase(edges->begin() + i);
      }
      return;
    }
  }
}

// Draws a revision batch, applying each revision to `edges` as it is drawn
// so every deledge/setprob targets an edge that is live at its position in
// the batch — DeltaLog will accept the whole sequence by construction.
std::vector<Revision> DrawAndApplyBatch(std::vector<UncertainEdge>* edges,
                                        std::size_t num_nodes,
                                        std::size_t sets, std::size_t adds,
                                        std::size_t dels, Rng& rng) {
  std::vector<Revision> batch;
  const auto emit = [&](Revision r) {
    ApplyRevision(r, edges);
    batch.push_back(r);
  };
  for (std::size_t i = 0; i < sets; ++i) {
    const UncertainEdge& e = (*edges)[rng.NextU64() % edges->size()];
    emit({e.src, e.dst, rng.NextDouble(), Revision::kSet});
  }
  for (std::size_t i = 0; i < adds; ++i) {
    NodeId src = static_cast<NodeId>(rng.NextU64() % num_nodes);
    NodeId dst = static_cast<NodeId>(rng.NextU64() % num_nodes);
    if (src == dst) dst = (dst + 1) % num_nodes;
    emit({src, dst, rng.NextDouble(), Revision::kAdd});
  }
  for (std::size_t i = 0; i < dels; ++i) {
    const UncertainEdge& e = (*edges)[rng.NextU64() % edges->size()];
    emit({e.src, e.dst, 0.0, Revision::kDel});
  }
  return batch;
}

UncertainGraph BuildFromEdges(const UncertainGraph& base,
                              const std::vector<UncertainEdge>& edges) {
  UncertainGraphBuilder b(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    b.SetSelfRisk(v, base.self_risk(v));
  }
  for (const UncertainEdge& e : edges) b.AddEdge(e.src, e.dst, e.prob);
  return b.Build().MoveValue();
}

std::string RankingKey(const DetectionResult& r) {
  std::string key;
  for (std::size_t i = 0; i < r.topk.size(); ++i) {
    key += std::to_string(r.topk[i]) + ":" +
           serve::FormatRoundTrip(r.scores[i]) + " ";
  }
  return key;
}

DetectionResult MustDetect(serve::QueryEngine& engine, const std::string& name,
                           const DetectorOptions& options) {
  Result<serve::DetectResponse> response = engine.Detect(name, options);
  if (!response.ok()) {
    std::fprintf(stderr, "detect %s failed: %s\n", name.c_str(),
                 response.status().ToString().c_str());
    std::exit(1);
  }
  return response->result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::GetProfile();
  bench::PrintProfileBanner(profile, "dynamic updates (commit + warm re-query)");
  bench::BenchJson json("dyn_updates", bench::JsonRequested(argc, argv));

  const DatasetId dataset = DatasetId::kCitation;
  const double scale = profile.DatasetScale(dataset);
  Result<UncertainGraph> base = MakeDataset(dataset, scale, 42);
  if (!base.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", base.status().ToString().c_str());
    return 1;
  }
  const std::size_t n = base->num_nodes();
  std::printf("graph: %s scale=%.3f (%zu nodes, %zu edges)\n\n",
              DatasetName(dataset).c_str(), scale, n, base->num_edges());

  const std::size_t kRounds = 7;
  const std::size_t kSets = 32, kAdds = 8, kDels = 4;
  DetectorOptions standing;
  standing.method = Method::kBsrbk;
  standing.k = std::max<std::size_t>(1, n / 200);  // 0.5%: revision-latency bound, not detect bound
  standing.naive_samples = profile.naive_samples;

  // Pre-generate the revision rounds and the regenerated text files the
  // static stack would reload (the upstream write cost belongs to neither
  // measured path).
  Rng rng(7);
  std::vector<UncertainEdge> edges(base->edges().begin(), base->edges().end());
  std::vector<std::vector<Revision>> rounds;
  std::vector<std::string> round_paths;
  for (std::size_t r = 0; r < kRounds; ++r) {
    rounds.push_back(DrawAndApplyBatch(&edges, n, kSets, kAdds, kDels, rng));
    const UncertainGraph rebuilt = BuildFromEdges(*base, edges);
    round_paths.push_back(bench::TempPath("bench_dyn_r" + std::to_string(r) + ".graph"));
    if (!WriteGraphFile(rebuilt, round_paths.back(), GraphFileFormat::kText).ok()) {
      std::fprintf(stderr, "snapshot write failed\n");
      return 1;
    }
  }
  const std::string base_path = bench::TempPath("bench_dyn_base.graph");
  if (!WriteGraphFile(*base, base_path, GraphFileFormat::kText).ok()) return 1;

  ThreadPool pool;
  serve::GraphCatalog catalog;
  serve::QueryEngineOptions engine_options;
  engine_options.pool = &pool;
  serve::QueryEngine engine(&catalog, engine_options);
  dyn::UpdateManager updates(&catalog);

  if (!catalog.Load("g", base_path).ok()) return 1;
  // Reach serving steady state on the base version before the first round.
  MustDetect(engine, "g", standing);

  std::vector<double> reloads, colds, stages, commit_latencies,
      warm_query_latencies;
  bool identical = true;

  for (std::size_t r = 0; r < kRounds; ++r) {
    // --- static stack: full text reload (fresh uid => cold) + cold detect.
    WallTimer timer;
    if (!catalog.Load("static", round_paths[r]).ok()) return 1;
    const double reload = timer.Seconds();
    timer.Reset();
    const DetectionResult static_result = MustDetect(engine, "static", standing);
    const double cold = timer.Seconds();
    reloads.push_back(reload);
    colds.push_back(cold);

    // --- dynamic path: stage the same batch, commit, query the version.
    timer.Reset();
    for (const Revision& rev : rounds[r]) {
      Status st;
      switch (rev.kind) {
        case Revision::kSet:
          st = updates.SetProb("g", rev.src, rev.dst, rev.prob).status();
          break;
        case Revision::kAdd:
          st = updates.AddEdge("g", rev.src, rev.dst, rev.prob).status();
          break;
        case Revision::kDel:
          st = updates.DeleteEdge("g", rev.src, rev.dst).status();
          break;
      }
      if (!st.ok()) {
        std::fprintf(stderr, "stage failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    stages.push_back(timer.Seconds());
    timer.Reset();
    Result<serve::CommitInfo> commit = updates.Commit("g");
    if (!commit.ok()) {
      std::fprintf(stderr, "commit failed: %s\n",
                   commit.status().ToString().c_str());
      return 1;
    }
    commit_latencies.push_back(timer.Seconds());
    timer.Reset();
    const DetectionResult dyn_result =
        MustDetect(engine, commit->versioned_name, standing);
    warm_query_latencies.push_back(timer.Seconds());

    if (RankingKey(static_result) != RankingKey(dyn_result)) {
      identical = false;
      std::fprintf(stderr, "round %zu: rankings diverge!\n", r);
    }
  }

  // Medians, not totals: the speedup gate must not fail because one round
  // caught a scheduler hiccup on a shared CI runner (same reasoning as the
  // median-of-3 cold in bench_serve_throughput).
  const double reload_p50 = bench::Percentile(reloads, 50);
  const double cold_p50 = bench::Percentile(colds, 50);
  const double stage_p50 = bench::Percentile(stages, 50);
  const double commit_p50 = bench::Percentile(commit_latencies, 50);
  const double query_p50 = bench::Percentile(warm_query_latencies, 50);
  const double static_round = reload_p50 + cold_p50;
  const double dyn_round = stage_p50 + commit_p50 + query_p50;
  const double speedup = dyn_round > 0 ? static_round / dyn_round : 0.0;
  const double rebuild_speedup = commit_p50 > 0 ? reload_p50 / commit_p50 : 0.0;

  TextTable table;
  table.SetHeader({"path", "median round (ms)", "breakdown (ms)"});
  table.AddRow({"static: reload + cold detect",
                TextTable::Num(static_round * 1e3, 3),
                "reload " + TextTable::Num(reload_p50 * 1e3, 3) + " + detect " +
                    TextTable::Num(cold_p50 * 1e3, 3)});
  table.AddRow({"dyn: stage + commit + warm query",
                TextTable::Num(dyn_round * 1e3, 3),
                "stage " + TextTable::Num(stage_p50 * 1e3, 3) + " + commit " +
                    TextTable::Num(commit_p50 * 1e3, 3) + " + query " +
                    TextTable::Num(query_p50 * 1e3, 3)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("rounds=%zu ops/round=%zu (set=%zu add=%zu del=%zu)\n", kRounds,
              kSets + kAdds + kDels, kSets, kAdds, kDels);
  const double commit_p99 = bench::Percentile(commit_latencies, 99);
  const double query_p99 = bench::Percentile(warm_query_latencies, 99);
  std::printf("commit p50=%.3fms p99=%.3fms; warm query p50=%.3fms p99=%.3fms\n",
              commit_p50 * 1e3, commit_p99 * 1e3, query_p50 * 1e3,
              query_p99 * 1e3);
  std::printf("commit vs full text rebuild (median): %.1fx faster\n",
              rebuild_speedup);
  std::printf("end-to-end median (stage+commit+query vs reload+detect): %.1fx\n",
              speedup);
  std::printf("rankings bit-identical across %zu rounds: %s\n", kRounds,
              identical ? "yes" : "NO");

  json.Add("n", n);
  json.Add("m", base->num_edges());
  json.Add("rounds", kRounds);
  json.Add("ops_per_round", kSets + kAdds + kDels);
  json.Add("static_reload_p50_ms", reload_p50 * 1e3);
  json.Add("static_detect_p50_ms", cold_p50 * 1e3);
  json.Add("dyn_stage_p50_ms", stage_p50 * 1e3);
  json.Add("commit_p50_ms", commit_p50 * 1e3);
  json.Add("commit_p99_ms", commit_p99 * 1e3);
  json.Add("warm_query_p50_ms", query_p50 * 1e3);
  json.Add("warm_query_p99_ms", query_p99 * 1e3);
  json.Add("speedup_vs_static", speedup);
  json.Add("commit_vs_rebuild", rebuild_speedup);
  json.Add("bit_identical", identical);
  if (!json.Write()) return 1;

  if (!identical) return 1;
  if (speedup < 5.0) {
    std::printf("\nWARNING: dynamic path %.1fx below the 5x target\n", speedup);
    return 1;
  }
  std::printf("\ndynamic path %.1fx >= 5x target: OK\n", speedup);
  return 0;
}
