// Serving-layer throughput: cold vs context-warm vs cached query latency,
// snapshot (binary) vs text load latency, and mixed-workload queries/sec
// with the result-cache hit rate.
//
// Quick profile by default; VULNDS_BENCH_FULL=1 runs the paper-scale graph.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/graph_io.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"

namespace {

using namespace vulnds;

double TimeDetect(serve::QueryEngine& engine, const std::string& graph,
                  const DetectorOptions& options) {
  WallTimer timer;
  const Result<serve::DetectResponse> response = engine.Detect(graph, options);
  if (!response.ok()) {
    std::fprintf(stderr, "detect failed: %s\n",
                 response.status().ToString().c_str());
    std::exit(1);
  }
  return timer.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchProfile profile = bench::GetProfile();
  bench::PrintProfileBanner(profile, "serve throughput (catalog + result cache)");
  bench::BenchJson json("serve_throughput", bench::JsonRequested(argc, argv));

  const DatasetId dataset = DatasetId::kCitation;
  const double scale = profile.DatasetScale(dataset);
  Result<UncertainGraph> graph = MakeDataset(dataset, scale, 42);
  if (!graph.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::size_t n = graph->num_nodes();
  std::printf("graph: %s scale=%.3f (%zu nodes, %zu edges)\n\n",
              DatasetName(dataset).c_str(), scale, n, graph->num_edges());

  // --- snapshot load: text vs binary --------------------------------------
  const std::string text_path = bench::TempPath("bench_serve.graph");
  const std::string bin_path = bench::TempPath("bench_serve.snap");
  if (!WriteGraphFile(*graph, text_path, GraphFileFormat::kText).ok() ||
      !WriteGraphFile(*graph, bin_path, GraphFileFormat::kBinary).ok()) {
    std::fprintf(stderr, "snapshot write failed\n");
    return 1;
  }

  ThreadPool pool;
  serve::GraphCatalog catalog;
  serve::QueryEngineOptions engine_options;
  engine_options.pool = &pool;
  serve::QueryEngine engine(&catalog, engine_options);

  WallTimer load_timer;
  if (!catalog.Load("text", text_path).ok()) return 1;
  const double text_load = load_timer.Seconds();
  load_timer.Reset();
  if (!catalog.Load("g", bin_path).ok()) return 1;
  const double bin_load = load_timer.Seconds();
  std::printf("load text:   %8.2f ms\n", text_load * 1e3);
  std::printf("load binary: %8.2f ms  (%.1fx faster)\n\n", bin_load * 1e3,
              bin_load > 0 ? text_load / bin_load : 0.0);
  catalog.Evict("text");

  // --- cold / context-warm / cached latency -------------------------------
  DetectorOptions options;
  options.method = Method::kBsrbk;
  options.k = std::max<std::size_t>(1, n * profile.k_percents.front() / 100);
  options.naive_samples = profile.naive_samples;

  // Cold is re-measurable because evict + reload mints a fresh snapshot uid
  // (nothing cached applies); take the median of 3 so one scheduler hiccup
  // on a shared CI runner cannot sink the speedup ratio.
  std::vector<double> cold_runs;
  for (int i = 0; i < 3; ++i) {
    if (i > 0) {
      catalog.Evict("g");
      if (!catalog.Load("g", bin_path).ok()) return 1;
    }
    cold_runs.push_back(TimeDetect(engine, "g", options));
  }
  std::sort(cold_runs.begin(), cold_runs.end());
  const double cold = cold_runs[1];

  // Same graph and bound order, new seed: result cache misses but the
  // context reuses bounds + candidate reduction.
  DetectorOptions warm_options = options;
  warm_options.seed = options.seed + 1;
  const double warm = TimeDetect(engine, "g", warm_options);

  // Identical query: served from the LRU result cache.
  const int kCachedReps = 1000;
  WallTimer cached_timer;
  for (int i = 0; i < kCachedReps; ++i) {
    TimeDetect(engine, "g", options);
  }
  const double cached = cached_timer.Seconds() / kCachedReps;

  TextTable table;
  table.SetHeader({"query", "latency (ms)", "speedup vs cold"});
  table.AddRow({"cold (first touch)", TextTable::Num(cold * 1e3, 3), "1.0x"});
  table.AddRow({"context-warm (new seed)", TextTable::Num(warm * 1e3, 3),
                TextTable::Num(warm > 0 ? cold / warm : 0.0, 1) + "x"});
  table.AddRow({"cached (identical)", TextTable::Num(cached * 1e3, 4),
                TextTable::Num(cached > 0 ? cold / cached : 0.0, 1) + "x"});
  std::printf("%s\n", table.ToString().c_str());

  // --- mixed workload throughput ------------------------------------------
  // Two passes over (k, method, seed) combinations: the first pass fills the
  // cache, the second is all hits — roughly a serving steady state where
  // popular queries repeat.
  std::vector<DetectorOptions> workload;
  for (const int pct : profile.k_percents) {
    for (const Method method : {Method::kBsr, Method::kBsrbk}) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        DetectorOptions o;
        o.method = method;
        o.k = std::max<std::size_t>(1, n * pct / 100);
        o.seed = seed;
        workload.push_back(o);
      }
    }
  }
  const int kPasses = 2;
  WallTimer workload_timer;
  std::vector<double> latencies;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const DetectorOptions& o : workload) {
      latencies.push_back(TimeDetect(engine, "g", o));
    }
  }
  const double elapsed = workload_timer.Seconds();
  const std::size_t queries = latencies.size();
  const serve::EngineStats stats = engine.stats();
  std::printf("mixed workload: %zu queries in %.3fs = %.1f queries/sec\n",
              queries, elapsed, queries / elapsed);
  const double p50 = bench::Percentile(latencies, 50);
  const double p90 = bench::Percentile(latencies, 90);
  const double p99 = bench::Percentile(latencies, 99);
  std::printf("latency percentiles: p50=%.3fms p90=%.3fms p99=%.3fms\n",
              p50 * 1e3, p90 * 1e3, p99 * 1e3);
  std::printf("result cache: hits=%zu misses=%zu hit_rate=%.1f%%\n",
              stats.result_cache.hits, stats.result_cache.misses,
              stats.result_cache.HitRate() * 100.0);

  json.Add("n", n);
  json.Add("m", graph->num_edges());
  json.Add("cold_ms", cold * 1e3);
  json.Add("context_warm_ms", warm * 1e3);
  json.Add("cached_ms", cached * 1e3);
  json.Add("workload_queries", queries);
  json.Add("workload_qps", queries / elapsed);
  json.Add("latency_p50_ms", p50 * 1e3);
  json.Add("latency_p90_ms", p90 * 1e3);
  json.Add("latency_p99_ms", p99 * 1e3);
  json.Add("cache_hit_rate", stats.result_cache.HitRate());
  if (!json.Write()) return 1;

  if (cached > 0 && cold / cached < 10.0) {
    std::printf("\nWARNING: cached speedup %.1fx below the 10x serving target\n",
                cold / cached);
    return 1;
  }
  std::printf("\ncached speedup %.0fx >= 10x serving target: OK\n", cold / cached);
  return 0;
}
